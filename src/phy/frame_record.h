#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "phy/frame.h"

namespace ezflow::phy {

class FramePool;

/// One transmission's immutable on-air frame. Allocated once per
/// Channel::transmit and shared — via FrameRef handles small enough for
/// the scheduler's inline event buffer — by every receiver's signal-end
/// event plus the sender's tx-end, so the per-receiver fan-out copies
/// pointers instead of Frame+Packet payloads. Records are recycled
/// through the owning FramePool when the last handle releases. An
/// aggregated frame's MPDU subframe vector lives inside the pooled Frame,
/// so a whole A-MPDU batch still costs one record per transmission — the
/// single-copy pipeline is per PPDU, not per MSDU.
class FrameRecord {
public:
    const Frame& frame() const { return frame_; }

private:
    friend class FramePool;
    friend class FrameRef;

    Frame frame_{};
    std::uint32_t refs_ = 0;
    /// Owning pool, or nullptr when the pool was destroyed first (the
    /// scheduler can outlive the channel with signal-end events still
    /// pending); an orphaned record self-deletes at the last release.
    FramePool* pool_ = nullptr;
};

/// Shared-ownership handle to a FrameRecord. Pointer-sized, non-atomic
/// (each Network is single-threaded; sweeps give every seed its own
/// channel and pool).
class FrameRef {
public:
    FrameRef() = default;
    FrameRef(const FrameRef& other) noexcept : record_(other.record_) { acquire(); }
    FrameRef(FrameRef&& other) noexcept : record_(other.record_) { other.record_ = nullptr; }
    FrameRef& operator=(const FrameRef& other) noexcept
    {
        if (this != &other) {
            release();
            record_ = other.record_;
            acquire();
        }
        return *this;
    }
    FrameRef& operator=(FrameRef&& other) noexcept
    {
        if (this != &other) {
            release();
            record_ = other.record_;
            other.record_ = nullptr;
        }
        return *this;
    }
    ~FrameRef() noexcept { release(); }

    explicit operator bool() const { return record_ != nullptr; }
    const Frame& operator*() const { return record_->frame_; }
    const Frame* operator->() const { return &record_->frame_; }

private:
    friend class FramePool;
    explicit FrameRef(FrameRecord* record) : record_(record) { acquire(); }

    void acquire()
    {
        if (record_ != nullptr) ++record_->refs_;
    }
    inline void release();

    FrameRecord* record_ = nullptr;
};

/// Free-list pool of FrameRecords. Steady state performs no heap
/// allocation per transmission: the pool grows to the peak number of
/// concurrently in-flight signals (a handful) and recycles from there.
class FramePool {
public:
    FramePool() = default;
    FramePool(const FramePool&) = delete;
    FramePool& operator=(const FramePool&) = delete;

    ~FramePool()
    {
        for (FrameRecord* record : all_) {
            if (record->refs_ == 0) {
                delete record;
            } else {
                // Still referenced by pending scheduler events (mid-flight
                // signal ends): orphan it; the last FrameRef deletes it.
                record->pool_ = nullptr;
            }
        }
    }

    /// Acquire a record holding `frame`. Recycles a free record when one
    /// exists; allocates (and registers) a new one otherwise.
    FrameRef make(Frame&& frame)
    {
        FrameRecord* record;
        if (!free_.empty()) {
            record = free_.back();
            free_.pop_back();
            ++reused_;
        } else {
            record = new FrameRecord();
            record->pool_ = this;
            all_.push_back(record);
            ++created_;
        }
        record->frame_ = std::move(frame);
        return FrameRef(record);
    }

    // --- statistics (tests and benchmarks) ---
    /// Records ever heap-allocated (== peak concurrent transmissions).
    std::uint64_t created() const { return created_; }
    /// make() calls served from the free list.
    std::uint64_t reused() const { return reused_; }
    /// Records currently referenced by at least one handle.
    std::size_t live() const { return all_.size() - free_.size(); }

private:
    friend class FrameRef;

    void recycle(FrameRecord* record) { free_.push_back(record); }

    std::vector<FrameRecord*> all_;   ///< every record this pool created
    std::vector<FrameRecord*> free_;  ///< refs_ == 0, ready for reuse
    std::uint64_t created_ = 0;
    std::uint64_t reused_ = 0;
};

inline void FrameRef::release()
{
    if (record_ == nullptr) return;
    if (--record_->refs_ == 0) {
        if (record_->pool_ != nullptr)
            record_->pool_->recycle(record_);
        else
            delete record_;
    }
    record_ = nullptr;
}

}  // namespace ezflow::phy

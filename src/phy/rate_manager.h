#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "phy/link_table.h"

namespace ezflow::phy {

/// The 802.11b DSSS/CCK rate ladder, bits per second.
inline constexpr std::array<std::int64_t, 4> kDsssRates = {1'000'000, 2'000'000, 5'500'000,
                                                           11'000'000};

/// Minimum SNR (dB) at which a frame modulated at `bitrate_bps` decodes,
/// used by the cumulative-SINR interference ledger: faster modulations need
/// more margin, which is what makes rate adaptation a real trade-off. The
/// figures follow the usual DSSS/CCK receiver-sensitivity deltas.
double min_decode_snr_db(std::int64_t bitrate_bps);

/// Per-link transmission rate selection. The MAC asks for a rate once per
/// data attempt (retries re-ask) and reports the attempt's outcome after
/// the ACK verdict; the chosen rate is stamped into `Frame::bitrate_bps`
/// and drives `PhyParams::tx_duration`. Control frames never consult the
/// manager — they stay at the PHY default rate so timeout and NAV
/// arithmetic is rate-independent.
class RateManager {
public:
    virtual ~RateManager() = default;
    /// Rate for the next data attempt on tx -> rx.
    virtual std::int64_t bitrate_bps(net::NodeId tx, net::NodeId rx) = 0;
    /// Outcome of the most recent attempt on tx -> rx.
    virtual void report(net::NodeId tx, net::NodeId rx, bool success) = 0;
};

/// Reference manager: every link uses one fixed rate (0 = the PHY default,
/// leaving frames unstamped — byte-identical to the pre-RateManager path).
class FixedRate final : public RateManager {
public:
    explicit FixedRate(std::int64_t bitrate_bps = 0) : rate_(bitrate_bps) {}
    std::int64_t bitrate_bps(net::NodeId, net::NodeId) override { return rate_; }
    void report(net::NodeId, net::NodeId, bool) override {}

private:
    std::int64_t rate_;
};

/// Minstrel-style probing rate adaptation, deterministic by construction.
///
/// Each link keeps an EWMA of per-rate delivery success; attempts normally
/// use the rate maximizing (ewma success x bitrate), and every
/// `probe_period`-th decision instead round-robins through the other rates
/// so the estimator never starves (Minstrel's ~10% look-around, made
/// deterministic — no RNG, so installing the manager perturbs no simulator
/// stream).
class MinstrelRate final : public RateManager {
public:
    explicit MinstrelRate(int probe_period = 10, double ewma_weight = 0.25);

    std::int64_t bitrate_bps(net::NodeId tx, net::NodeId rx) override;
    void report(net::NodeId tx, net::NodeId rx, bool success) override;

    /// Current best-throughput rate estimate for a link (tests/figures).
    std::int64_t best_rate_bps(net::NodeId tx, net::NodeId rx);

private:
    struct LinkState {
        std::array<double, kDsssRates.size()> ewma_success{};
        std::uint64_t decisions = 0;
        std::uint32_t probe_cursor = 0;
        int pending_rate_idx = -1;  ///< rate of the attempt awaiting a report
    };

    LinkState& state_for(net::NodeId tx, net::NodeId rx);
    int best_index(const LinkState& state) const;

    int probe_period_;
    double ewma_weight_;
    LinkTable<std::unique_ptr<LinkState>> links_;
};

}  // namespace ezflow::phy

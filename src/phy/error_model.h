#pragma once

#include <memory>

#include "util/rng.h"
#include "util/units.h"

namespace ezflow::phy {

/// Gilbert–Elliott parameters: a two-state continuous-time Markov chain
/// (rates per second) with a per-state frame loss probability. Models the
/// channel variability the paper cites as a reason the BOE must tolerate
/// missed sniffs.
struct GilbertParams {
    double to_bad_per_s = 0.1;   ///< good -> bad transition rate
    double to_good_per_s = 1.0;  ///< bad -> good transition rate
    double loss_good = 0.0;
    double loss_bad = 0.8;
};

/// Stationary loss fraction of a Gilbert link (for tests/calibration).
double gilbert_stationary_loss(const GilbertParams& params);

/// Per-link frame error process. The Channel owns one instance per directed
/// link (installed via `Channel::set_link_error_model`) and asks it for the
/// current loss probability once per frame arriving on that link; the
/// Channel then rolls delivery against that probability from its own
/// stream. Stateful processes (Gilbert–Elliott) evolve themselves inside
/// `loss_probability` using the supplied time and RNG — the RNG is the
/// channel's stream, so draw exactly what the process needs and nothing
/// speculative.
class ErrorModel {
public:
    virtual ~ErrorModel() = default;

    /// Loss probability in [0, 1] for a frame arriving now.
    virtual double loss_probability(util::SimTime now, util::Rng& rng) = 0;

    /// Called once when the model is installed on a link. State machines
    /// use this to draw their initial state (Gilbert starts in the
    /// stationary distribution so measurements need no warmup).
    virtual void reset(util::SimTime now, util::Rng& rng)
    {
        (void)now;
        (void)rng;
    }

    /// Long-run mean loss fraction (for calibration and the link_loss
    /// accessor).
    virtual double mean_loss() const = 0;
};

/// Time-invariant loss: every frame is lost independently with fixed
/// probability. The reference error model `Channel::set_link_loss` installs.
class StaticLoss final : public ErrorModel {
public:
    explicit StaticLoss(double loss_probability);
    double loss_probability(util::SimTime now, util::Rng& rng) override;
    double mean_loss() const override { return loss_; }

private:
    double loss_;
};

/// Gilbert–Elliott bursty loss: the link flips between a good and a bad
/// state as a two-state CTMC, advanced by the exact closed-form transition
/// probability over the elapsed interval at each query.
class GilbertElliott final : public ErrorModel {
public:
    explicit GilbertElliott(GilbertParams params);
    void reset(util::SimTime now, util::Rng& rng) override;
    double loss_probability(util::SimTime now, util::Rng& rng) override;
    double mean_loss() const override { return gilbert_stationary_loss(params_); }

    bool in_bad_state() const { return bad_; }

private:
    GilbertParams params_;
    bool bad_ = false;
    util::SimTime last_update_ = 0;
};

/// Factory for the common case; validates parameters.
std::unique_ptr<ErrorModel> make_gilbert(const GilbertParams& params);

}  // namespace ezflow::phy

#include "phy/models.h"

namespace ezflow::phy {
namespace {

std::uint64_t derive_model_seed(const PhyModelConfig& config, std::uint64_t network_seed)
{
    if (config.model_seed != 0) return config.model_seed;
    // Keyed off a constant no other subsystem uses, so model randomness is
    // independent of the channel/traffic fork sequence.
    return network_seed ^ 0xFAD1E5B00CULL;
}

}  // namespace

std::unique_ptr<PropagationModel> make_propagation(const PhyModelConfig& config,
                                                   std::uint64_t network_seed)
{
    switch (config.propagation) {
        case PhyModelConfig::Propagation::kTwoRay:
            return nullptr;  // reference: Channel keeps the inlined 1/d^4
        case PhyModelConfig::Propagation::kJakes:
            return std::make_unique<JakesFading>(std::make_unique<TwoRayReference>(),
                                                 config.jakes_doppler_hz,
                                                 derive_model_seed(config, network_seed),
                                                 config.jakes_oscillators);
    }
    return nullptr;
}

std::unique_ptr<RateManager> make_rate_manager(const PhyModelConfig& config)
{
    switch (config.rate) {
        case PhyModelConfig::Rate::kFixed:
            return nullptr;  // reference: frames stay at the PHY default
        case PhyModelConfig::Rate::kMinstrel:
            return std::make_unique<MinstrelRate>(config.minstrel_probe_period,
                                                  config.minstrel_ewma);
    }
    return nullptr;
}

}  // namespace ezflow::phy

#include "phy/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ezflow::phy {

Channel::Channel(sim::Scheduler& scheduler, util::Rng rng, PhyParams params)
    : scheduler_(scheduler), rng_(std::move(rng)), params_(params)
{
}

void Channel::attach(NodePhy& phy)
{
    if (!index_by_id_.emplace(phy.id(), phys_.size()).second)
        throw std::invalid_argument("Channel::attach: duplicate node id");
    phys_.push_back(&phy);
    phy.set_channel(this);
    reach_.clear();  // topology grew: rebuild lazily on the next transmit
    ghost_reach_.clear();
}

void Channel::detach(NodePhy& phy)
{
    const auto it = index_by_id_.find(phy.id());
    if (it == index_by_id_.end() || phys_[it->second] != &phy)
        throw std::invalid_argument("Channel::detach: phy not attached");
    const std::size_t gone = it->second;
    phys_.erase(phys_.begin() + static_cast<std::ptrdiff_t>(gone));
    index_by_id_.erase(it);
    for (auto& [id, index] : index_by_id_)
        if (index > gone) --index;
    phy.set_channel(nullptr);
    // Symmetric invalidation with attach: ensure_reach only compares
    // sizes, so a detach followed by an attach of another node would
    // otherwise leave the cache at the same size but pointing at the
    // dead PHY.
    reach_.clear();
    ghost_reach_.clear();
}

bool Channel::is_attached(const NodePhy& phy) const
{
    const auto it = index_by_id_.find(phy.id());
    return it != index_by_id_.end() && phys_[it->second] == &phy;
}

void Channel::set_models(const PhyModelConfig& config, std::uint64_t network_seed)
{
    if (config.is_reference()) return;  // exact no-op: golden-pinned path
    set_propagation_model(make_propagation(config, network_seed));
    set_rate_manager(make_rate_manager(config));
    set_interference_mode(config.interference);
    if (config.noise_floor_w >= 0.0) params_.noise_floor_w = config.noise_floor_w;
    if (config.weighted_overlap) params_.weighted_overlap_interference = true;
}

void Channel::set_propagation_model(std::unique_ptr<PropagationModel> model)
{
    propagation_ = std::move(model);
    reach_.clear();  // power law changed: precomputed powers are stale
    ghost_reach_.clear();
}

void Channel::set_mirror_hook(std::vector<net::NodeId> boundary_senders, MirrorHook hook)
{
    if (!std::is_sorted(boundary_senders.begin(), boundary_senders.end()))
        throw std::invalid_argument("Channel::set_mirror_hook: senders must be sorted");
    mirror_senders_ = std::move(boundary_senders);
    mirror_hook_ = std::move(hook);
}

double Channel::link_power(net::NodeId tx, net::NodeId rx, double distance_m)
{
    if (propagation_ == nullptr) {
        // Reference two-ray ground power (all scenario distances sit beyond
        // the ~86 m crossover, so the d^-4 regime applies; the constant
        // factor cancels in every capture-SIR comparison). Clamp tiny
        // distances to keep the power finite for co-located nodes.
        const double d_eff = std::max(distance_m, 1.0);
        return 1.0 / (d_eff * d_eff * d_eff * d_eff);
    }
    return propagation_->link_power_w(tx, rx, 1.0, distance_m, scheduler_.now());
}

double Channel::frame_capture_threshold(const Frame& frame) const
{
    if (interference_ == PhyModelConfig::Interference::kReference)
        return params_.capture_threshold;
    // Cumulative-SINR mode: the frame must clear both the capture threshold
    // and its modulation's decode floor, whichever is harsher.
    const std::int64_t rate = frame.bitrate_bps > 0 ? frame.bitrate_bps : params_.bitrate_bps;
    const double db = std::max(params_.capture_threshold_db, min_decode_snr_db(rate));
    return std::pow(10.0, db / 10.0);
}

void Channel::ensure_reach()
{
    if (reach_.size() == phys_.size()) return;
    const bool static_power = propagation_ == nullptr || propagation_->time_invariant();
    reach_.assign(phys_.size(), {});
    for (std::size_t s = 0; s < phys_.size(); ++s) {
        const NodePhy& sender = *phys_[s];
        for (NodePhy* phy : phys_) {
            if (phy == &sender) continue;
            const double d = distance(sender.position(), phy->position());
            if (d > params_.conflict_radius_m()) continue;
            // Time-variant propagation (fading) re-derives power at
            // transmit time from the stored distance; otherwise the power
            // is precomputed here, once per topology.
            const double power_w = static_power ? link_power(sender.id(), phy->id(), d) : 0.0;
            reach_[s].push_back(
                ReachEntry{phy, d <= params_.tx_range_m, d <= params_.cs_range_m, power_w, d});
        }
    }
}

std::size_t Channel::reachable_count(net::NodeId tx)
{
    const auto it = index_by_id_.find(tx);
    if (it == index_by_id_.end())
        throw std::invalid_argument("Channel::reachable_count: unknown node");
    ensure_reach();
    return reach_[it->second].size();
}

void Channel::set_link_error_model(net::NodeId tx, net::NodeId rx,
                                   std::unique_ptr<ErrorModel> model)
{
    if (model == nullptr)
        throw std::invalid_argument("Channel::set_link_error_model: model required");
    model->reset(scheduler_.now(), rng_);
    error_models_.insert_or_assign(tx, rx, std::move(model));
}

void Channel::set_link_loss(net::NodeId tx, net::NodeId rx, double loss_probability)
{
    set_link_error_model(tx, rx, std::make_unique<StaticLoss>(loss_probability));
}

double Channel::link_loss(net::NodeId tx, net::NodeId rx) const
{
    const auto* model = error_models_.find(tx, rx);
    return model == nullptr ? 0.0 : (*model)->mean_loss();
}

double Channel::sample_link_loss(net::NodeId tx, net::NodeId rx)
{
    auto* model = error_models_.find(tx, rx);
    if (model == nullptr) return 0.0;
    return (*model)->loss_probability(scheduler_.now(), rng_);
}

void Channel::transmit(NodePhy& sender, Frame frame)
{
    const SimTime duration = params_.tx_duration(frame);
    const std::uint64_t signal_id = next_signal_id_++;
    ++transmissions_;
    if (frame.type == FrameType::kData) ++data_transmissions_;

    // Single-copy fan-out: the frame moves into one pooled record and
    // every per-receiver signal-end (plus the sender's tx-end) captures a
    // pointer-sized handle, so the events stay in the scheduler's inline
    // buffer and fan-out cost is O(receivers) pointer copies.
    const FrameRef record = frame_pool_.make(std::move(frame));
    const Frame& shared = *record;

    const bool sinr = interference_ == PhyModelConfig::Interference::kSinrLedger;
    const double threshold = frame_capture_threshold(shared);
    const double noise_w = sinr ? params_.noise_floor_w : 0.0;
    const bool dynamic_power = propagation_ != nullptr && !propagation_->time_invariant();

    const auto deliver = [&](NodePhy* phy, bool in_delivery_range, bool sensed, double power_w) {
        RxEvent rx;
        rx.signal_id = signal_id;
        rx.frame = &shared;
        rx.power_w = power_w;
        rx.noise_w = noise_w;
        rx.capture_threshold = threshold;
        rx.in_delivery = in_delivery_range;
        rx.sensed = sensed;
        rx.error = false;
        rx.mpdu_error_bits = 0;
        if (in_delivery_range) {
            const std::size_t n_sub = shared.subframes.size();
            if (n_sub > 0) {
                // Aggregated frame: the per-link error model corrupts each
                // MPDU independently (one roll per subframe from the same
                // sampled loss), and `error` collapses to the legacy
                // whole-frame verdict only when every subframe is lost.
                const double loss = sample_link_loss(sender.id(), phy->id());
                std::uint64_t bits = 0;
                for (std::size_t i = 0; i < n_sub && i < 64; ++i)
                    if (rng_.bernoulli(loss)) bits |= (1ull << i);
                rx.mpdu_error_bits = bits;
                rx.error = bits == (n_sub >= 64 ? ~0ull : (1ull << n_sub) - 1);
            } else {
                rx.error = rng_.bernoulli(sample_link_loss(sender.id(), phy->id()));
            }
        }
        phy->signal_start(rx);
        scheduler_.schedule_in(
            duration, [phy, signal_id, ref = record] { phy->signal_end(signal_id, *ref); });
    };

    if (cull_enabled_) {
        ensure_reach();
        const auto it = index_by_id_.find(sender.id());
        if (it == index_by_id_.end())
            throw std::logic_error("Channel::transmit: sender not attached");
        for (const ReachEntry& r : reach_[it->second]) {
            const double power_w =
                dynamic_power ? link_power(sender.id(), r.phy->id(), r.distance_m) : r.power_w;
            deliver(r.phy, r.in_delivery, r.sensed, power_w);
        }
    } else {
        // Reference full-broadcast scan. Identical per-receiver facts and
        // loss-roll order (attach order, delivery-range receivers only),
        // so either path produces the same simulation.
        for (NodePhy* phy : phys_) {
            if (phy == &sender) continue;
            const double d = distance(sender.position(), phy->position());
            if (d > params_.conflict_radius_m()) continue;
            deliver(phy, d <= params_.tx_range_m, d <= params_.cs_range_m,
                    link_power(sender.id(), phy->id(), d));
        }
    }
    scheduler_.schedule_in(duration,
                           [phy = &sender, ref = record] { phy->tx_end(*ref); });

    // Boundary mirroring (connected-cut sharding): hand the transmission
    // to the Network's hook so foreign shards receive it as a ghost. The
    // hook only copies and posts — it consumes no channel RNG and cannot
    // affect anything local, so the reference path is untouched.
    if (mirror_hook_ &&
        std::binary_search(mirror_senders_.begin(), mirror_senders_.end(), sender.id()))
        mirror_hook_(sender, shared, duration, signal_id);
}

void Channel::inject_ghost(net::NodeId foreign_id, const Position& foreign_pos, Frame frame,
                           SimTime duration_us, std::uint64_t ghost_signal_id)
{
    auto it = ghost_reach_.find(foreign_id);
    if (it == ghost_reach_.end()) {
        // First ghost from this foreign node since the last topology
        // change: precompute which local PHYs its energy reaches and with
        // what power, using the same propagation code path as a local
        // transmission would (bit-identical doubles).
        const double radius_hard = std::max(params_.tx_range_m, params_.cs_range_m);
        std::vector<GhostReachEntry> entries;
        for (NodePhy* phy : phys_) {
            const double d = distance(foreign_pos, phy->position());
            if (d > params_.conflict_radius_m()) continue;
            if (d <= radius_hard)
                throw std::logic_error(
                    "Channel::inject_ghost: foreign node within sense/delivery range "
                    "(the shard plan must only cut interference-only edges)");
            entries.push_back(GhostReachEntry{phy, link_power(foreign_id, phy->id(), d)});
        }
        it = ghost_reach_.emplace(foreign_id, std::move(entries)).first;
    }

    const FrameRef record = frame_pool_.make(std::move(frame));
    const Frame& shared = *record;
    const bool sinr = interference_ == PhyModelConfig::Interference::kSinrLedger;
    const double threshold = frame_capture_threshold(shared);
    const double noise_w = sinr ? params_.noise_floor_w : 0.0;
    for (const GhostReachEntry& entry : it->second) {
        RxEvent rx;
        rx.signal_id = ghost_signal_id;
        rx.frame = &shared;
        rx.power_w = entry.power_w;
        rx.noise_w = noise_w;
        rx.capture_threshold = threshold;
        // Interference-only by the plan (checked when the cache was
        // built): no decode candidate, no carrier-sense energy, no
        // error-model roll — a pure SINR-ledger entry, which is what
        // makes ghost delivery order-commutative against local events at
        // the same instant.
        rx.in_delivery = false;
        rx.sensed = false;
        rx.error = false;
        entry.phy->signal_start(rx);
        scheduler_.schedule_in(duration_us, [phy = entry.phy, ghost_signal_id, ref = record] {
            phy->signal_end(ghost_signal_id, *ref);
        });
    }
}

}  // namespace ezflow::phy

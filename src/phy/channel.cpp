#include "phy/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ezflow::phy {

Channel::Channel(sim::Scheduler& scheduler, util::Rng rng, PhyParams params)
    : scheduler_(scheduler), rng_(std::move(rng)), params_(params)
{
}

void Channel::attach(NodePhy& phy)
{
    if (!index_by_id_.emplace(phy.id(), phys_.size()).second)
        throw std::invalid_argument("Channel::attach: duplicate node id");
    phys_.push_back(&phy);
    phy.set_channel(this);
    reach_.clear();  // topology grew: rebuild lazily on the next transmit
}

void Channel::ensure_reach()
{
    if (reach_.size() == phys_.size()) return;
    reach_.assign(phys_.size(), {});
    for (std::size_t s = 0; s < phys_.size(); ++s) {
        const NodePhy& sender = *phys_[s];
        for (NodePhy* phy : phys_) {
            if (phy == &sender) continue;
            const double d = distance(sender.position(), phy->position());
            if (d > params_.cs_range_m && d > params_.interference_range_m) continue;
            // Two-ray ground power (all scenario distances sit beyond the
            // ~86 m crossover, so the d^-4 regime applies; the constant
            // factor cancels in every capture-SIR comparison). Clamp tiny
            // distances to keep the power finite for co-located nodes.
            const double d_eff = std::max(d, 1.0);
            const double power_w = 1.0 / (d_eff * d_eff * d_eff * d_eff);
            reach_[s].push_back(
                ReachEntry{phy, d <= params_.tx_range_m, d <= params_.cs_range_m, power_w});
        }
    }
}

std::size_t Channel::reachable_count(net::NodeId tx)
{
    const auto it = index_by_id_.find(tx);
    if (it == index_by_id_.end())
        throw std::invalid_argument("Channel::reachable_count: unknown node");
    ensure_reach();
    return reach_[it->second].size();
}

void Channel::set_link_loss(net::NodeId tx, net::NodeId rx, double loss_probability)
{
    if (loss_probability < 0.0 || loss_probability > 1.0)
        throw std::invalid_argument("Channel::set_link_loss: probability out of range");
    link_loss_[{tx, rx}] = loss_probability;
}

double Channel::link_loss(net::NodeId tx, net::NodeId rx) const
{
    const auto it = link_loss_.find({tx, rx});
    return it == link_loss_.end() ? 0.0 : it->second;
}

void Channel::set_link_gilbert(net::NodeId tx, net::NodeId rx, GilbertParams params)
{
    if (params.to_bad_per_s <= 0.0 || params.to_good_per_s <= 0.0)
        throw std::invalid_argument("Channel::set_link_gilbert: rates must be > 0");
    if (params.loss_good < 0.0 || params.loss_good > 1.0 || params.loss_bad < 0.0 ||
        params.loss_bad > 1.0)
        throw std::invalid_argument("Channel::set_link_gilbert: losses out of range");
    GilbertState state;
    state.params = params;
    state.last_update = scheduler_.now();
    // Start in the stationary distribution so measurements need no warmup.
    state.bad = rng_.bernoulli(params.to_bad_per_s / (params.to_bad_per_s + params.to_good_per_s));
    gilbert_[{tx, rx}] = state;
    link_loss_.erase({tx, rx});
}

double Channel::gilbert_stationary_loss(const GilbertParams& params)
{
    const double pi_bad = params.to_bad_per_s / (params.to_bad_per_s + params.to_good_per_s);
    return pi_bad * params.loss_bad + (1.0 - pi_bad) * params.loss_good;
}

double Channel::sample_link_loss(net::NodeId tx, net::NodeId rx)
{
    const auto it = gilbert_.find({tx, rx});
    if (it == gilbert_.end()) return link_loss(tx, rx);
    GilbertState& state = it->second;
    // Exact two-state CTMC transition over the elapsed interval:
    // P(state changed once net | dt) via the standard closed form.
    const double dt = util::to_seconds(scheduler_.now() - state.last_update);
    state.last_update = scheduler_.now();
    if (dt > 0.0) {
        const double lambda = state.params.to_bad_per_s;
        const double mu = state.params.to_good_per_s;
        const double pi_bad = lambda / (lambda + mu);
        const double decay = std::exp(-(lambda + mu) * dt);
        const double p_bad_now =
            state.bad ? pi_bad + (1.0 - pi_bad) * decay : pi_bad * (1.0 - decay);
        state.bad = rng_.bernoulli(p_bad_now);
    }
    return state.bad ? state.params.loss_bad : state.params.loss_good;
}

void Channel::transmit(NodePhy& sender, Frame frame)
{
    const SimTime duration = params_.tx_duration(frame);
    const std::uint64_t signal_id = next_signal_id_++;
    ++transmissions_;
    if (frame.type == FrameType::kData) ++data_transmissions_;

    // Single-copy fan-out: the frame moves into one pooled record and
    // every per-receiver signal-end (plus the sender's tx-end) captures a
    // pointer-sized handle, so the events stay in the scheduler's inline
    // buffer and fan-out cost is O(receivers) pointer copies.
    const FrameRef record = frame_pool_.make(std::move(frame));
    const Frame& shared = *record;

    const auto deliver = [&](NodePhy* phy, bool in_delivery_range, bool sensed, double power_w) {
        const bool lost =
            in_delivery_range && rng_.bernoulli(sample_link_loss(sender.id(), phy->id()));
        const bool decodable = in_delivery_range && !lost;
        phy->signal_start(signal_id, shared, decodable, sensed, power_w);
        scheduler_.schedule_in(
            duration, [phy, signal_id, ref = record] { phy->signal_end(signal_id, *ref); });
    };

    if (cull_enabled_) {
        ensure_reach();
        const auto it = index_by_id_.find(sender.id());
        if (it == index_by_id_.end())
            throw std::logic_error("Channel::transmit: sender not attached");
        for (const ReachEntry& r : reach_[it->second])
            deliver(r.phy, r.in_delivery, r.sensed, r.power_w);
    } else {
        // Reference full-broadcast scan. Identical per-receiver facts and
        // loss-roll order (attach order, delivery-range receivers only),
        // so either path produces the same simulation.
        for (NodePhy* phy : phys_) {
            if (phy == &sender) continue;
            const double d = distance(sender.position(), phy->position());
            if (d > params_.cs_range_m && d > params_.interference_range_m) continue;
            const double d_eff = std::max(d, 1.0);
            deliver(phy, d <= params_.tx_range_m, d <= params_.cs_range_m,
                    1.0 / (d_eff * d_eff * d_eff * d_eff));
        }
    }
    scheduler_.schedule_in(duration,
                           [phy = &sender, ref = record] { phy->tx_end(*ref); });
}

}  // namespace ezflow::phy

#include "phy/propagation.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace ezflow::phy {

using util::kPi;

double PropagationModel::range_for_threshold(double tx_power_w, double threshold_w) const
{
    if (threshold_w <= 0.0) throw std::invalid_argument("range_for_threshold: threshold must be > 0");
    // Bisect on a monotone decreasing power profile.
    double lo = 0.1;
    double hi = 1.0;
    while (rx_power_w(tx_power_w, hi) > threshold_w && hi < 1e7) hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (rx_power_w(tx_power_w, mid) > threshold_w)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

FreeSpace::FreeSpace(double wavelength_m, double gain_tx, double gain_rx, double system_loss)
    : wavelength_m_(wavelength_m), gain_tx_(gain_tx), gain_rx_(gain_rx), system_loss_(system_loss)
{
    if (wavelength_m <= 0.0) throw std::invalid_argument("FreeSpace: wavelength must be > 0");
}

double FreeSpace::rx_power_w(double tx_power_w, double distance_m) const
{
    if (distance_m <= 0.0) return tx_power_w;
    const double denom = 4.0 * kPi * distance_m;
    return tx_power_w * gain_tx_ * gain_rx_ * wavelength_m_ * wavelength_m_ /
           (denom * denom * system_loss_);
}

TwoRayGround::TwoRayGround(double wavelength_m, double antenna_height_m, double gain_tx,
                           double gain_rx, double system_loss)
    : friis_(wavelength_m, gain_tx, gain_rx, system_loss),
      height_m_(antenna_height_m),
      gain_tx_(gain_tx),
      gain_rx_(gain_rx),
      system_loss_(system_loss),
      crossover_m_(4.0 * kPi * antenna_height_m * antenna_height_m / wavelength_m)
{
    if (antenna_height_m <= 0.0) throw std::invalid_argument("TwoRayGround: height must be > 0");
}

double TwoRayGround::rx_power_w(double tx_power_w, double distance_m) const
{
    if (distance_m < crossover_m_) return friis_.rx_power_w(tx_power_w, distance_m);
    const double d2 = distance_m * distance_m;
    return tx_power_w * gain_tx_ * gain_rx_ * height_m_ * height_m_ * height_m_ * height_m_ /
           (d2 * d2 * system_loss_);
}

}  // namespace ezflow::phy

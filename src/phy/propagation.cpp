#include "phy/propagation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/units.h"

namespace ezflow::phy {

using util::kPi;

double PropagationModel::range_for_threshold(double tx_power_w, double threshold_w) const
{
    if (threshold_w <= 0.0) throw std::invalid_argument("range_for_threshold: threshold must be > 0");
    // Bisect on a monotone decreasing power profile.
    double lo = 0.1;
    double hi = 1.0;
    while (rx_power_w(tx_power_w, hi) > threshold_w && hi < 1e7) hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (rx_power_w(tx_power_w, mid) > threshold_w)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

FreeSpace::FreeSpace(double wavelength_m, double gain_tx, double gain_rx, double system_loss)
    : wavelength_m_(wavelength_m), gain_tx_(gain_tx), gain_rx_(gain_rx), system_loss_(system_loss)
{
    if (wavelength_m <= 0.0) throw std::invalid_argument("FreeSpace: wavelength must be > 0");
}

double FreeSpace::rx_power_w(double tx_power_w, double distance_m) const
{
    if (distance_m <= 0.0) return tx_power_w;
    const double denom = 4.0 * kPi * distance_m;
    return tx_power_w * gain_tx_ * gain_rx_ * wavelength_m_ * wavelength_m_ /
           (denom * denom * system_loss_);
}

TwoRayGround::TwoRayGround(double wavelength_m, double antenna_height_m, double gain_tx,
                           double gain_rx, double system_loss)
    : friis_(wavelength_m, gain_tx, gain_rx, system_loss),
      height_m_(antenna_height_m),
      gain_tx_(gain_tx),
      gain_rx_(gain_rx),
      system_loss_(system_loss),
      crossover_m_(4.0 * kPi * antenna_height_m * antenna_height_m / wavelength_m)
{
    if (antenna_height_m <= 0.0) throw std::invalid_argument("TwoRayGround: height must be > 0");
}

double TwoRayGround::rx_power_w(double tx_power_w, double distance_m) const
{
    if (distance_m < crossover_m_) return friis_.rx_power_w(tx_power_w, distance_m);
    const double d2 = distance_m * distance_m;
    return tx_power_w * gain_tx_ * gain_rx_ * height_m_ * height_m_ * height_m_ * height_m_ /
           (d2 * d2 * system_loss_);
}

double TwoRayReference::rx_power_w(double tx_power_w, double distance_m) const
{
    // Operation order matters: this must stay the exact expression the
    // Channel historically inlined so reference-model goldens remain
    // byte-identical under -ffp-contract=off.
    const double d_eff = std::max(distance_m, 1.0);
    return tx_power_w / (d_eff * d_eff * d_eff * d_eff);
}

struct JakesFading::Oscillators {
    std::vector<double> omega;  ///< w_d * cos(alpha_k), rad/s
    std::vector<double> phi;    ///< initial phase, rad
};

namespace {

std::uint64_t splitmix_key(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

JakesFading::JakesFading(std::unique_ptr<PropagationModel> base, double doppler_hz,
                         std::uint64_t seed, int oscillators)
    : base_(std::move(base)), doppler_hz_(doppler_hz), seed_(seed), oscillators_(oscillators)
{
    if (!base_) throw std::invalid_argument("JakesFading: base model required");
    if (doppler_hz < 0.0) throw std::invalid_argument("JakesFading: doppler must be >= 0");
    if (oscillators < 1) throw std::invalid_argument("JakesFading: need at least one oscillator");
}

JakesFading::~JakesFading() = default;

double JakesFading::rx_power_w(double tx_power_w, double distance_m) const
{
    return base_->rx_power_w(tx_power_w, distance_m);
}

JakesFading::Oscillators& JakesFading::rays_for(net::NodeId tx, net::NodeId rx)
{
    const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx)) << 32) |
                              static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx));
    for (auto& [k, bank] : banks_)
        if (k == key) return *bank;

    // Ray bank seeded by a keyed hash of (model seed, link): deterministic,
    // independent of every simulator RNG stream, and distinct per direction.
    util::Rng rng(splitmix_key(seed_ ^ splitmix_key(key)));
    auto bank = std::make_unique<Oscillators>();
    const double omega_d = 2.0 * kPi * doppler_hz_;
    bank->omega.reserve(static_cast<std::size_t>(oscillators_));
    bank->phi.reserve(static_cast<std::size_t>(oscillators_));
    for (int k = 0; k < oscillators_; ++k) {
        const double alpha = rng.uniform_real(0.0, 2.0 * kPi);
        bank->omega.push_back(omega_d * std::cos(alpha));
        bank->phi.push_back(rng.uniform_real(0.0, 2.0 * kPi));
    }
    banks_.emplace_back(key, std::move(bank));
    return *banks_.back().second;
}

double JakesFading::power_gain(net::NodeId tx, net::NodeId rx, util::SimTime now)
{
    const Oscillators& bank = rays_for(tx, rx);
    const double t = static_cast<double>(now) * 1e-6;
    double re = 0.0;
    double im = 0.0;
    for (std::size_t k = 0; k < bank.omega.size(); ++k) {
        const double theta = bank.omega[k] * t + bank.phi[k];
        re += std::cos(theta);
        im += std::sin(theta);
    }
    return (re * re + im * im) / static_cast<double>(bank.omega.size());
}

double JakesFading::link_power_w(net::NodeId tx, net::NodeId rx, double tx_power_w,
                                 double distance_m, util::SimTime now)
{
    const double base = base_->link_power_w(tx, rx, tx_power_w, distance_m, now);
    // Degenerate case: zero Doppler means a static unit-mean channel; skip
    // the gain product entirely so the base power is returned bit-for-bit.
    if (doppler_hz_ == 0.0) return base;
    return base * power_gain(tx, rx, now);
}

}  // namespace ezflow::phy

#include "phy/rate_manager.h"

#include <stdexcept>

namespace ezflow::phy {

double min_decode_snr_db(std::int64_t bitrate_bps)
{
    // DSSS/CCK receiver-sensitivity ladder: each modulation step costs
    // roughly 3 dB of margin.
    if (bitrate_bps <= 1'000'000) return 4.0;
    if (bitrate_bps <= 2'000'000) return 7.0;
    if (bitrate_bps <= 5'500'000) return 10.0;
    return 13.0;
}

MinstrelRate::MinstrelRate(int probe_period, double ewma_weight)
    : probe_period_(probe_period), ewma_weight_(ewma_weight)
{
    if (probe_period < 2) throw std::invalid_argument("MinstrelRate: probe period must be >= 2");
    if (ewma_weight <= 0.0 || ewma_weight > 1.0)
        throw std::invalid_argument("MinstrelRate: EWMA weight out of (0, 1]");
}

MinstrelRate::LinkState& MinstrelRate::state_for(net::NodeId tx, net::NodeId rx)
{
    if (auto* found = links_.find(tx, rx)) return **found;
    auto state = std::make_unique<LinkState>();
    // Optimistic start: every rate begins fully trusted, so the first
    // attempts try the top rate and the EWMA walks it down where the link
    // cannot sustain it (standard Minstrel bootstrap behaviour).
    state->ewma_success.fill(1.0);
    return *links_.insert_or_assign(tx, rx, std::move(state));
}

int MinstrelRate::best_index(const LinkState& state) const
{
    int best = 0;
    double best_tp = -1.0;
    for (std::size_t i = 0; i < kDsssRates.size(); ++i) {
        const double tp = state.ewma_success[i] * static_cast<double>(kDsssRates[i]);
        if (tp > best_tp) {
            best_tp = tp;
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::int64_t MinstrelRate::bitrate_bps(net::NodeId tx, net::NodeId rx)
{
    LinkState& state = state_for(tx, rx);
    const int best = best_index(state);
    int choice = best;
    // Deterministic look-around: every probe_period-th decision samples a
    // non-best rate in round-robin order so stale estimates recover.
    if (state.decisions % static_cast<std::uint64_t>(probe_period_) ==
        static_cast<std::uint64_t>(probe_period_ - 1)) {
        choice = static_cast<int>(state.probe_cursor % kDsssRates.size());
        if (choice == best) choice = static_cast<int>((choice + 1) % kDsssRates.size());
        ++state.probe_cursor;
    }
    ++state.decisions;
    state.pending_rate_idx = choice;
    return kDsssRates[static_cast<std::size_t>(choice)];
}

void MinstrelRate::report(net::NodeId tx, net::NodeId rx, bool success)
{
    LinkState& state = state_for(tx, rx);
    if (state.pending_rate_idx < 0) return;  // report without a decision: ignore
    double& ewma = state.ewma_success[static_cast<std::size_t>(state.pending_rate_idx)];
    ewma = (1.0 - ewma_weight_) * ewma + ewma_weight_ * (success ? 1.0 : 0.0);
    state.pending_rate_idx = -1;
}

std::int64_t MinstrelRate::best_rate_bps(net::NodeId tx, net::NodeId rx)
{
    return kDsssRates[static_cast<std::size_t>(best_index(state_for(tx, rx)))];
}

}  // namespace ezflow::phy

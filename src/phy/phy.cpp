#include "phy/phy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "phy/channel.h"

namespace ezflow::phy {

NodePhy::NodePhy(net::NodeId id, Position position, sim::Scheduler& scheduler)
    : id_(id), position_(position), scheduler_(scheduler)
{
    (void)scheduler_;  // kept for symmetry/future use (e.g. switching delays)
}

const PhyParams& NodePhy::channel_params() const
{
    if (channel_ == nullptr) throw std::logic_error("NodePhy::channel_params: no channel attached");
    return channel_->params();
}

double NodePhy::interference_sum(std::uint64_t except_id) const
{
    double sum = 0.0;
    for (const ActiveSignal& s : active_)
        if (s.id != except_id) sum += s.power_w;
    return sum;
}

void NodePhy::start_tx(Frame frame)
{
    if (transmitting_) throw std::logic_error("NodePhy::start_tx: already transmitting");
    if (channel_ == nullptr) throw std::logic_error("NodePhy::start_tx: no channel attached");
    if (rx_active_) {
        // Half-duplex: starting a transmission abandons the reception.
        rx_active_ = false;
        ++frames_corrupted_;
    }
    transmitting_ = true;
    update_busy();
    channel_->transmit(*this, std::move(frame));
}

void NodePhy::signal_start(std::uint64_t signal_id, const Frame& frame, bool decodable,
                           bool sensed, double power_w)
{
    (void)frame;
    active_.push_back(ActiveSignal{signal_id, power_w, sensed});
    if (sensed) ++sensed_active_;
    const double threshold = channel_params().capture_threshold;
    if (transmitting_) {
        // Cannot hear anything while transmitting.
        if (decodable) ++frames_missed_busy_;
    } else if (rx_active_) {
        // The locked reception survives if it still captures over the sum
        // of all interferers (corruption is sticky).
        if (rx_power_w_ < threshold * interference_sum(rx_signal_id_)) rx_corrupted_ = true;
        if (decodable) ++frames_missed_busy_;
    } else if (decodable) {
        rx_active_ = true;
        rx_signal_id_ = signal_id;
        rx_power_w_ = power_w;
        // Pre-existing overlapping energy corrupts the new reception
        // unless the frame captures over it.
        rx_corrupted_ = power_w < threshold * interference_sum(signal_id);
    }
    update_busy();
}

void NodePhy::signal_end(std::uint64_t signal_id, const Frame& frame)
{
    const auto it = std::find_if(active_.begin(), active_.end(),
                                 [signal_id](const ActiveSignal& s) { return s.id == signal_id; });
    if (it == active_.end()) throw std::logic_error("NodePhy::signal_end: unknown signal");
    const bool was_sensed = it->sensed;
    active_.erase(it);
    if (was_sensed) --sensed_active_;

    const bool completes_rx = rx_active_ && rx_signal_id_ == signal_id;
    bool deliver = false;
    if (completes_rx) {
        rx_active_ = false;
        if (rx_corrupted_) {
            ++frames_corrupted_;
        } else {
            ++frames_decoded_;
            deliver = true;
        }
    }
    // EIFS bookkeeping: a sensed busy period that did not end in a clean
    // decode leaves the station obliged to wait EIFS next (unless it was
    // transmitting itself, in which case it saw nothing).
    if (was_sensed && !transmitting_) last_rx_error_ = !deliver;
    update_busy();
    if (deliver && listener_ != nullptr) listener_->phy_frame_decoded(frame);
}

void NodePhy::tx_end(const Frame& frame)
{
    if (!transmitting_) throw std::logic_error("NodePhy::tx_end: not transmitting");
    transmitting_ = false;
    update_busy();
    if (listener_ != nullptr) listener_->phy_tx_done(frame);
}

void NodePhy::update_busy()
{
    const bool now_busy = busy();
    if (now_busy == last_busy_) return;
    last_busy_ = now_busy;
    if (listener_ != nullptr) listener_->phy_busy_changed(now_busy);
}

}  // namespace ezflow::phy

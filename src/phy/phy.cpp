#include "phy/phy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "phy/channel.h"

namespace ezflow::phy {

NodePhy::NodePhy(net::NodeId id, Position position, sim::Scheduler& scheduler)
    : id_(id), position_(position), scheduler_(scheduler)
{
    (void)scheduler_;  // kept for symmetry/future use (e.g. switching delays)
}

const PhyParams& NodePhy::channel_params() const
{
    if (channel_ == nullptr) throw std::logic_error("NodePhy::channel_params: no channel attached");
    return channel_->params();
}

double NodePhy::interference_sum(std::uint64_t except_id) const
{
    double sum = 0.0;
    for (const ActiveSignal& s : active_)
        if (s.id != except_id) sum += s.power_w;
    return sum;
}

bool NodePhy::rx_weighted() const
{
    return channel_ != nullptr && channel_->params().weighted_overlap_interference;
}

void NodePhy::mark_mpdus_corrupt(SimTime bad_from, SimTime bad_to)
{
    if (bad_to <= bad_from) return;
    for (std::size_t i = 0; i < rx_mpdu_ends_.size() && i < 64; ++i) {
        const SimTime begin = rx_started_at_ + (i == 0 ? 0 : rx_mpdu_ends_[i - 1]);
        const SimTime end = rx_started_at_ + rx_mpdu_ends_[i];
        if (bad_from < end && bad_to > begin) rx_mpdu_errors_ |= (1ull << i);
    }
}

void NodePhy::start_tx(Frame frame)
{
    if (transmitting_) throw std::logic_error("NodePhy::start_tx: already transmitting");
    if (channel_ == nullptr) throw std::logic_error("NodePhy::start_tx: no channel attached");
    if (rx_active_) {
        // Half-duplex: starting a transmission abandons the reception.
        rx_active_ = false;
        ++frames_corrupted_;
    }
    transmitting_ = true;
    update_busy();
    channel_->transmit(*this, std::move(frame));
}

void NodePhy::power_off()
{
    powered_ = false;
    power_cycled_ = true;
    // Wipe everything on the air at this node. No listener callbacks: the
    // MAC was quiesced before the radio died, and a busy->idle edge here
    // must not restart its contention machinery.
    active_.clear();
    sensed_active_ = 0;
    ledger_w_ = 0.0;
    transmitting_ = false;
    rx_active_ = false;
    rx_corrupted_ = false;
    rx_aggregated_ = false;
    rx_bad_since_ = -1;
    last_rx_error_ = false;
    last_busy_ = false;
}

void NodePhy::power_on()
{
    powered_ = true;
}

void NodePhy::signal_start(const RxEvent& rx)
{
    if (!powered_) return;  // dead radios hear nothing (and are detached anyway)
    active_.push_back(ActiveSignal{rx.signal_id, rx.power_w, rx.sensed, scheduler_.now()});
    ledger_w_ += rx.power_w;
    if (rx.sensed) ++sensed_active_;
    const bool decodable = rx.decodable();
    if (transmitting_) {
        // Cannot hear anything while transmitting.
        if (decodable) ++frames_missed_busy_;
    } else if (rx_active_) {
        // The locked reception survives only while it still clears its SINR
        // over the exact sum of all interferers plus noise (corruption is
        // sticky). The sum is recomputed from the ledger entries rather
        // than taken from the incremental total: capture decisions must be
        // bit-exact, and interference only changes at signal edges, so the
        // minimum SINR over the frame is observed at exactly these checks.
        if (rx_aggregated_) {
            // Per-MPDU regime: an arrival only raises interference, so it
            // can open (never close) a below-threshold interval; recovery
            // is observed at interferer signal ends.
            if (rx_bad_since_ < 0 && rx_below_threshold()) rx_bad_since_ = scheduler_.now();
        } else if (rx_weighted()) {
            // Verdict deferred to frame end (overlap-weighted integral).
        } else if (rx_below_threshold()) {
            rx_corrupted_ = true;
        }
        if (decodable) ++frames_missed_busy_;
    } else if (decodable) {
        rx_active_ = true;
        rx_signal_id_ = rx.signal_id;
        rx_power_w_ = rx.power_w;
        rx_threshold_ = rx.capture_threshold;
        rx_noise_w_ = rx.noise_w;
        rx_aggregated_ = rx.frame->aggregated();
        rx_started_at_ = scheduler_.now();
        rx_bad_since_ = -1;
        rx_interference_integral_ = 0.0;
        rx_mpdu_errors_ = 0;
        if (rx_aggregated_) {
            rx_mpdu_errors_ = rx.mpdu_error_bits;
            channel_params().mpdu_end_offsets(*rx.frame, rx_mpdu_ends_);
            rx_corrupted_ = false;
            if (rx_below_threshold()) rx_bad_since_ = scheduler_.now();
        } else if (rx_weighted()) {
            // Pre-existing interferers contribute their eventual overlap
            // at their signal ends; the verdict settles at frame end.
            rx_corrupted_ = false;
        } else {
            // Pre-existing overlapping energy corrupts the new reception
            // unless the frame captures over it.
            rx_corrupted_ = rx_below_threshold();
        }
    }
    update_busy();
}

void NodePhy::signal_end(std::uint64_t signal_id, const Frame& frame)
{
    const auto it = std::find_if(active_.begin(), active_.end(),
                                 [signal_id](const ActiveSignal& s) { return s.id == signal_id; });
    if (it == active_.end()) {
        // A power cycle wiped the signal this end-event refers to; the
        // event itself could not be cancelled (the channel schedules it
        // without keeping a handle). Only then is the miss legitimate.
        if (power_cycled_) return;
        throw std::logic_error("NodePhy::signal_end: unknown signal");
    }
    const bool was_sensed = it->sensed;
    const double ended_power = it->power_w;
    const SimTime ended_start = it->start_us;
    ledger_w_ -= it->power_w;
    active_.erase(it);
    if (active_.empty()) ledger_w_ = 0.0;  // empty ledger is exactly quiet
    if (was_sensed) --sensed_active_;

    const bool completes_rx = rx_active_ && rx_signal_id_ == signal_id;
    if (rx_active_ && !completes_rx) {
        // An interferer left while a frame is locked.
        if (rx_aggregated_) {
            // Interference just dropped: a below-threshold interval may
            // close here — map it onto the subframes it overlapped.
            if (rx_bad_since_ >= 0 && !rx_below_threshold()) {
                mark_mpdus_corrupt(rx_bad_since_, scheduler_.now());
                rx_bad_since_ = -1;
            }
        } else if (rx_weighted()) {
            rx_interference_integral_ +=
                ended_power *
                static_cast<double>(scheduler_.now() - std::max(ended_start, rx_started_at_));
        }
    }
    bool deliver = false;
    if (completes_rx) {
        rx_active_ = false;
        last_decode_mpdu_errors_ = 0;
        if (rx_aggregated_) {
            if (rx_bad_since_ >= 0) {
                mark_mpdus_corrupt(rx_bad_since_, scheduler_.now());
                rx_bad_since_ = -1;
            }
            const std::size_t n = frame.subframes.size();
            const std::uint64_t all = n >= 64 ? ~0ull : ((1ull << n) - 1);
            if ((rx_mpdu_errors_ & all) == all) {
                ++frames_corrupted_;
            } else {
                ++frames_decoded_;
                last_decode_mpdu_errors_ = rx_mpdu_errors_ & all;
                deliver = true;
            }
        } else {
            if (rx_weighted()) {
                // Close the integral over the interferers still on the air
                // (the frame's own entry is already erased) and settle the
                // overlap-weighted capture verdict once, for the whole
                // frame.
                for (const ActiveSignal& s : active_)
                    rx_interference_integral_ +=
                        s.power_w *
                        static_cast<double>(scheduler_.now() -
                                            std::max(s.start_us, rx_started_at_));
                const double span = static_cast<double>(scheduler_.now() - rx_started_at_);
                const double mean_w = span > 0 ? rx_interference_integral_ / span : 0.0;
                rx_corrupted_ = rx_power_w_ < rx_threshold_ * (mean_w + rx_noise_w_);
            }
            if (rx_corrupted_) {
                ++frames_corrupted_;
            } else {
                ++frames_decoded_;
                deliver = true;
            }
        }
    }
    // EIFS bookkeeping: a sensed busy period that did not end in a clean
    // decode leaves the station obliged to wait EIFS next (unless it was
    // transmitting itself, in which case it saw nothing).
    if (was_sensed && !transmitting_) last_rx_error_ = !deliver;
    update_busy();
    if (deliver && listener_ != nullptr) listener_->phy_frame_decoded(frame);
}

void NodePhy::tx_end(const Frame& frame)
{
    if (!transmitting_) {
        if (power_cycled_) return;  // transmission wiped by a power cycle
        throw std::logic_error("NodePhy::tx_end: not transmitting");
    }
    transmitting_ = false;
    update_busy();
    if (listener_ != nullptr) listener_->phy_tx_done(frame);
}

std::int64_t NodePhy::data_bitrate_for(net::NodeId rx) const
{
    if (channel_ == nullptr)
        throw std::logic_error("NodePhy::data_bitrate_for: no channel attached");
    return channel_->data_bitrate(id_, rx);
}

void NodePhy::report_tx_result(net::NodeId rx, bool success)
{
    if (channel_ == nullptr)
        throw std::logic_error("NodePhy::report_tx_result: no channel attached");
    channel_->report_tx_result(id_, rx, success);
}

void NodePhy::update_busy()
{
    const bool now_busy = busy();
    if (now_busy == last_busy_) return;
    last_busy_ = now_busy;
    if (listener_ != nullptr) listener_->phy_busy_changed(now_busy);
}

}  // namespace ezflow::phy

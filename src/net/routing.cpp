#include "net/routing.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ezflow::net {

std::vector<NodeId> StaticRouting::validated(std::vector<NodeId> path)
{
    if (path.size() < 2) throw std::invalid_argument("StaticRouting::add_flow: path too short");
    for (NodeId n : path) {
        if (n < -kMaxNodeId || n > kMaxNodeId)
            throw std::invalid_argument("StaticRouting::add_flow: node id out of range");
    }
    std::set<NodeId> seen(path.begin(), path.end());
    if (seen.size() != path.size())
        throw std::invalid_argument("StaticRouting::add_flow: path revisits a node");
    return path;
}

void StaticRouting::record_change(int flow_id)
{
    ++version_;
    change_log_.push_back(FlowChange{version_, flow_id});
    // Bound the log: drop the older half once it grows past 1024 entries
    // and remember the highest pruned version so tables compiled before
    // it know the replay is incomplete and fall back to a full compile.
    constexpr std::size_t kLogCapacity = 1024;
    if (change_log_.size() > kLogCapacity) {
        const std::size_t drop = change_log_.size() / 2;
        log_floor_ = change_log_[drop - 1].version;
        change_log_.erase(change_log_.begin(),
                          change_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    }
}

void StaticRouting::add_flow(int flow_id, std::vector<NodeId> path)
{
    path = validated(std::move(path));
    if (paths_.count(flow_id) > 0)
        throw std::invalid_argument("StaticRouting::add_flow: duplicate flow id");
    paths_[flow_id] = std::move(path);
    ++version_;
    ++structure_version_;
}

void StaticRouting::update_flow(int flow_id, std::vector<NodeId> path)
{
    path = validated(std::move(path));
    const auto it = paths_.find(flow_id);
    if (it == paths_.end()) throw std::invalid_argument("StaticRouting::update_flow: unknown flow");
    it->second = std::move(path);
    suspended_.erase(flow_id);
    record_change(flow_id);
}

void StaticRouting::suspend_flow(int flow_id)
{
    if (paths_.count(flow_id) == 0)
        throw std::invalid_argument("StaticRouting::suspend_flow: unknown flow");
    if (!suspended_.insert(flow_id).second) return;
    record_change(flow_id);
}

void StaticRouting::resume_flow(int flow_id)
{
    if (paths_.count(flow_id) == 0)
        throw std::invalid_argument("StaticRouting::resume_flow: unknown flow");
    if (suspended_.erase(flow_id) == 0) return;
    record_change(flow_id);
}

NodeId StaticRouting::next_hop(int flow_id, NodeId node) const
{
    const auto& p = path(flow_id);
    if (suspended_.count(flow_id) == 0) {
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
            if (p[i] == node) return p[i + 1];
        }
    }
    throw std::invalid_argument("StaticRouting::next_hop: node has no next hop on this flow");
}

bool StaticRouting::has_next_hop(int flow_id, NodeId node) const
{
    const auto it = paths_.find(flow_id);
    if (it == paths_.end()) return false;
    if (suspended_.count(flow_id) > 0) return false;
    const auto& p = it->second;
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        if (p[i] == node) return true;
    return false;
}

const std::vector<NodeId>& StaticRouting::path(int flow_id) const
{
    const auto it = paths_.find(flow_id);
    if (it == paths_.end()) throw std::invalid_argument("StaticRouting: unknown flow");
    return it->second;
}

std::vector<int> StaticRouting::flow_ids() const
{
    std::vector<int> ids;
    ids.reserve(paths_.size());
    for (const auto& [id, _] : paths_) ids.push_back(id);
    return ids;
}

void RoutingTable::compile() const
{
    const std::vector<int> ids = builder_->flow_ids();
    rows_ = static_cast<std::int32_t>(ids.size());
    // The builder accepts any NodeId values (Network validates ids
    // separately), so the dense node axis covers [node_base_, node_base_
    // + node_stride_) of the ids actually used — negative included.
    node_base_ = 0;
    NodeId node_max = -1;
    bool first = true;
    for (int id : ids) {
        for (NodeId n : builder_->path(id)) {
            node_base_ = first ? n : std::min(node_base_, n);
            node_max = first ? n : std::max(node_max, n);
            first = false;
        }
    }
    node_stride_ = first ? 0 : node_max - node_base_ + 1;

    slot_of_flow_.clear();
    sparse_flows_.clear();
    flow_slots_ = 0;
    if (!ids.empty()) {
        flow_min_ = ids.front();  // flow_ids() is ascending
        const std::int64_t range = static_cast<std::int64_t>(ids.back()) - flow_min_ + 1;
        // A dense id index only pays when ids are reasonably packed;
        // otherwise fall back to binary search over the sorted pairs.
        if (range <= 64 + 16 * static_cast<std::int64_t>(ids.size())) {
            flow_slots_ = range;
            slot_of_flow_.assign(static_cast<std::size_t>(range), -1);
        }
        for (std::int32_t row = 0; row < rows_; ++row) {
            if (flow_slots_ > 0)
                slot_of_flow_[static_cast<std::size_t>(ids[static_cast<std::size_t>(row)] -
                                                       flow_min_)] = row;
            else
                sparse_flows_.emplace_back(ids[static_cast<std::size_t>(row)], row);
        }
    }

    next_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(node_stride_),
                 kNoNextHop);
    for (std::int32_t row = 0; row < rows_; ++row) {
        const int flow_id = ids[static_cast<std::size_t>(row)];
        // Suspended flows keep their row (the node axis covers their
        // path so a later resume patches in place) but answer kNoNextHop
        // everywhere, matching the builder.
        if (builder_->is_suspended(flow_id)) continue;
        const auto& p = builder_->path(flow_id);
        NodeId* base = next_.data() + static_cast<std::size_t>(row) *
                                          static_cast<std::size_t>(node_stride_);
        for (std::size_t i = 0; i + 1 < p.size(); ++i) base[p[i] - node_base_] = p[i + 1];
    }
    compiled_version_ = builder_->version();
    compiled_structure_version_ = builder_->structure_version();
}

bool RoutingTable::patch_flow(int flow_id) const
{
    const std::int64_t row = flow_row(flow_id);
    if (row < 0) return false;
    if (!builder_->is_suspended(flow_id)) {
        // Reject before touching the row: a path that stepped outside the
        // compiled node axis needs a full compile to widen the stride.
        for (NodeId n : builder_->path(flow_id)) {
            const std::int64_t slot = static_cast<std::int64_t>(n) - node_base_;
            if (slot < 0 || slot >= node_stride_) return false;
        }
    }
    NodeId* base =
        next_.data() + static_cast<std::size_t>(row) * static_cast<std::size_t>(node_stride_);
    std::fill(base, base + node_stride_, kNoNextHop);
    if (!builder_->is_suspended(flow_id)) {
        const auto& p = builder_->path(flow_id);
        for (std::size_t i = 0; i + 1 < p.size(); ++i) base[p[i] - node_base_] = p[i + 1];
    }
    return true;
}

void RoutingTable::refresh() const
{
    // Incremental repair only applies when the flow set itself is stable
    // and the change log still reaches back to the compiled version;
    // otherwise rebuild everything.
    if (compiled_version_ == ~std::uint64_t{0} ||
        compiled_structure_version_ != builder_->structure_version() ||
        compiled_version_ < builder_->change_log_floor()) {
        compile();
        return;
    }
    for (const StaticRouting::FlowChange& change : builder_->change_log()) {
        if (change.version <= compiled_version_) continue;
        if (!patch_flow(change.flow_id)) {
            compile();
            return;
        }
    }
    compiled_version_ = builder_->version();
}

std::int64_t RoutingTable::flow_row(int flow_id) const
{
    if (flow_slots_ > 0) {
        const std::int64_t slot = static_cast<std::int64_t>(flow_id) - flow_min_;
        if (slot < 0 || slot >= flow_slots_) return -1;
        return slot_of_flow_[static_cast<std::size_t>(slot)];
    }
    const auto it = std::lower_bound(
        sparse_flows_.begin(), sparse_flows_.end(), flow_id,
        [](const std::pair<int, std::int32_t>& entry, int id) { return entry.first < id; });
    if (it == sparse_flows_.end() || it->first != flow_id) return -1;
    return it->second;
}

NodeId RoutingTable::next_hop_or_none(int flow_id, NodeId node) const
{
    ensure_fresh();
    const std::int64_t row = flow_row(flow_id);
    // 64-bit slot arithmetic: callers may probe any int node id, and
    // node - node_base_ would be signed-overflow UB at the extremes.
    const std::int64_t slot = static_cast<std::int64_t>(node) - node_base_;
    if (row < 0 || slot < 0 || slot >= node_stride_) return kNoNextHop;
    return next_[static_cast<std::size_t>(row) * static_cast<std::size_t>(node_stride_) +
                 static_cast<std::size_t>(slot)];
}

NodeId RoutingTable::next_hop(int flow_id, NodeId node) const
{
    ensure_fresh();
    const std::int64_t row = flow_row(flow_id);
    if (row < 0) throw std::invalid_argument("StaticRouting: unknown flow");
    const std::int64_t slot = static_cast<std::int64_t>(node) - node_base_;
    if (slot < 0 || slot >= node_stride_)
        throw std::invalid_argument("StaticRouting::next_hop: node has no next hop on this flow");
    const NodeId next = next_[static_cast<std::size_t>(row) *
                                  static_cast<std::size_t>(node_stride_) +
                              static_cast<std::size_t>(slot)];
    if (next == kNoNextHop)
        throw std::invalid_argument("StaticRouting::next_hop: node has no next hop on this flow");
    return next;
}

bool RoutingTable::has_next_hop(int flow_id, NodeId node) const
{
    return next_hop_or_none(flow_id, node) != kNoNextHop;
}

int RoutingTable::flow_count() const
{
    ensure_fresh();
    return rows_;
}

NodeId RoutingTable::node_stride() const
{
    ensure_fresh();
    return node_stride_;
}

}  // namespace ezflow::net

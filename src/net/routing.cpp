#include "net/routing.h"

#include <set>
#include <stdexcept>

namespace ezflow::net {

void StaticRouting::add_flow(int flow_id, std::vector<NodeId> path)
{
    if (path.size() < 2) throw std::invalid_argument("StaticRouting::add_flow: path too short");
    std::set<NodeId> seen(path.begin(), path.end());
    if (seen.size() != path.size())
        throw std::invalid_argument("StaticRouting::add_flow: path revisits a node");
    if (paths_.count(flow_id) > 0)
        throw std::invalid_argument("StaticRouting::add_flow: duplicate flow id");
    paths_[flow_id] = std::move(path);
}

NodeId StaticRouting::next_hop(int flow_id, NodeId node) const
{
    const auto& p = path(flow_id);
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        if (p[i] == node) return p[i + 1];
    }
    throw std::invalid_argument("StaticRouting::next_hop: node has no next hop on this flow");
}

bool StaticRouting::has_next_hop(int flow_id, NodeId node) const
{
    const auto it = paths_.find(flow_id);
    if (it == paths_.end()) return false;
    const auto& p = it->second;
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        if (p[i] == node) return true;
    return false;
}

const std::vector<NodeId>& StaticRouting::path(int flow_id) const
{
    const auto it = paths_.find(flow_id);
    if (it == paths_.end()) throw std::invalid_argument("StaticRouting: unknown flow");
    return it->second;
}

std::vector<int> StaticRouting::flow_ids() const
{
    std::vector<int> ids;
    ids.reserve(paths_.size());
    for (const auto& [id, _] : paths_) ids.push_back(id);
    return ids;
}

}  // namespace ezflow::net

#include "net/packet.h"

namespace ezflow::net {

std::uint16_t packet_checksum(int flow_id, std::uint64_t seq, NodeId src, NodeId dst, int bytes)
{
    // 64-bit mix (splitmix64 finalizer) folded to 16 bits. The goal is not
    // cryptographic strength but the statistical behaviour of a transport
    // checksum: uniform-looking, deterministic, 16 bits.
    std::uint64_t z = static_cast<std::uint64_t>(flow_id) * 0x100000001b3ULL;
    z ^= seq + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
    z ^= static_cast<std::uint64_t>(src) << 32;
    z ^= static_cast<std::uint64_t>(dst) << 48;
    z ^= static_cast<std::uint64_t>(bytes);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<std::uint16_t>(z ^ (z >> 16) ^ (z >> 32) ^ (z >> 48));
}

}  // namespace ezflow::net

#pragma once

#include <cstdint>

#include "util/units.h"

namespace ezflow::net {

using util::SimTime;

/// Node identifier inside a Network (dense, starting at 0).
using NodeId = int;

/// An end-to-end data packet. Carried by value through queues and frames;
/// deliberately small and trivially copyable.
struct Packet {
    /// Globally unique id (per simulation), for tracing and MAC dedup.
    std::uint64_t uid = 0;
    /// Flow this packet belongs to.
    int flow_id = -1;
    /// Per-flow sequence number (creation order at the source).
    std::uint64_t seq = 0;
    /// End-to-end source and destination nodes.
    NodeId src = -1;
    NodeId dst = -1;
    /// Transport payload size in bytes (UDP-like CBR payload).
    int bytes = 0;
    /// The 16-bit transport checksum the BOE uses as a passive identifier.
    /// Computed from packet contents; collisions are possible, as with real
    /// TCP/UDP checksums (Section 3.2 of the paper).
    std::uint16_t checksum = 0;
    /// Creation time at the source, for end-to-end delay accounting.
    SimTime created_at = 0;
    /// Time of the first on-air transmission attempt at the source MAC
    /// (-1 until then). Network delay is measured from this point: a
    /// saturated CBR source's local backlog reflects offered load, not
    /// network turbulence, and the paper's 0.2 s EZ-Flow delays are only
    /// attainable net of that artifact.
    SimTime first_tx_at = -1;
};

/// Compute the 16-bit identifier for a packet, mimicking a transport
/// checksum over the packet's identifying contents. It is a deterministic
/// 16-bit fold of a 64-bit mix, so distinct packets can collide with
/// probability ~2^-16, just like real checksums.
std::uint16_t packet_checksum(int flow_id, std::uint64_t seq, NodeId src, NodeId dst, int bytes);

}  // namespace ezflow::net

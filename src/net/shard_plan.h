#pragma once

#include <cstdint>
#include <vector>

#include "phy/frame.h"
#include "phy/geometry.h"

namespace ezflow::net {

/// Static assignment of node ids to simulation shards. A shard is a set
/// of nodes whose radio conflict edges (delivery, carrier-sense and
/// interference reach) never cross the shard boundary, so each shard can
/// run on its own Scheduler/Channel/ContentionCoordinator with no radio
/// synchronization — only timestamped wired handoffs ever cross shards.
///
/// An empty plan (shard_count == 0) means "unsharded": the Network puts
/// every node in shard 0, which is the byte-identical serial reference.
struct ShardPlan {
    int shard_count = 0;
    std::vector<int> shard_of_node;  ///< dense by node id

    bool empty() const { return shard_count <= 0; }
};

/// Partition `positions` into at most `max_shards` shards such that no
/// two nodes within the radio conflict radius land in different shards.
///
/// The conflict radius is max(tx_range_m, cs_range_m,
/// interference_range_m): the Channel's per-transmitter sensed and
/// in-delivery reachability sets are exactly the nodes within
/// max(cs, interference) and tx range respectively, so a partition whose
/// cut edges all exceed the conflict radius cuts no sensed or delivery
/// edge. Merging every pair within the radius — whether or not the pair
/// would actually decode each other — is the conservative side of that
/// guarantee: when in doubt (boundary distances, asymmetric ranges) nodes
/// end up in the same shard.
///
/// Connected components of that conflict graph (union-find over a
/// spatial hash, O(n) expected) are packed greedily into
/// min(max_shards, components) shards balanced by node count; shard ids
/// are relabeled so shards ascend by their minimum node id, which makes
/// the assignment deterministic and independent of packing order.
///
/// A fully connected topology (every grid/mesh scenario) collapses to a
/// single shard — sharding it would require cutting radio edges, which
/// this planner never does.
ShardPlan plan_shards(const std::vector<phy::Position>& positions, const phy::PhyParams& phy,
                      int max_shards);

}  // namespace ezflow::net

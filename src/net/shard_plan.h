#pragma once

#include <cstdint>
#include <vector>

#include "phy/frame.h"
#include "phy/geometry.h"

namespace ezflow::net {

/// Static assignment of node ids to simulation shards. A shard is a set
/// of nodes whose radio conflict edges (delivery, carrier-sense and
/// interference reach) never cross the shard boundary, so each shard can
/// run on its own Scheduler/Channel/ContentionCoordinator with no radio
/// synchronization — only timestamped wired handoffs ever cross shards.
///
/// An empty plan (shard_count == 0) means "unsharded": the Network puts
/// every node in shard 0, which is the byte-identical serial reference.
///
/// A *connected-cut* plan additionally cuts interference-only edges —
/// pairs farther apart than max(tx_range, cs_range) but within
/// interference range. Such an edge carries no decodable frame and no
/// carrier-sense energy, only SINR-ledger power, so the cut is repaired
/// at run time by mirroring every boundary node's transmissions into the
/// neighbouring shards' channels as read-only ghost signals
/// (phy::Channel::inject_ghost). `boundary_nodes` and
/// `ghost_targets_of_node` are the static wiring for that mirror layer.
struct ShardPlan {
    int shard_count = 0;
    std::vector<int> shard_of_node;  ///< dense by node id

    /// True when the plan cuts interference-only edges of a connected
    /// conflict graph; the Network must install the ghost-mirror layer.
    bool connected_cut = false;
    /// Per shard, ascending node ids with at least one cross-shard
    /// interference edge. Empty vectors when !connected_cut.
    std::vector<std::vector<int>> boundary_nodes;
    /// Per node, ascending list of foreign shards holding a neighbour
    /// within interference range (empty for interior nodes).
    std::vector<std::vector<int>> ghost_targets_of_node;

    bool empty() const { return shard_count <= 0; }
};

/// Partition `positions` into at most `max_shards` shards such that no
/// two nodes within the radio conflict radius land in different shards.
///
/// The conflict radius is max(tx_range_m, cs_range_m,
/// interference_range_m): the Channel's per-transmitter sensed and
/// in-delivery reachability sets are exactly the nodes within
/// max(cs, interference) and tx range respectively, so a partition whose
/// cut edges all exceed the conflict radius cuts no sensed or delivery
/// edge. Merging every pair within the radius — whether or not the pair
/// would actually decode each other — is the conservative side of that
/// guarantee: when in doubt (boundary distances, asymmetric ranges) nodes
/// end up in the same shard.
///
/// Connected components of that conflict graph (union-find over a
/// spatial hash, O(n) expected) are packed greedily into
/// min(max_shards, components) shards balanced by node count; shard ids
/// are relabeled so shards ascend by their minimum node id, which makes
/// the assignment deterministic and independent of packing order.
///
/// A topology whose conflict graph is connected only through
/// interference-only edges (interference_range > max(tx, cs) and the
/// graph restricted to sense/delivery edges falls apart into several
/// components) is cut *through* those edges: the sense/delivery
/// components are atomic units, packed greedily by size into
/// min(max_shards, units) shards and then refined by a bounded
/// deterministic KL-style pass that moves whole units to reduce the
/// number of cut interference edges while keeping the greedy balance
/// bound (max - min load <= largest unit). The resulting plan has
/// `connected_cut` set and carries the boundary/ghost-target sets the
/// Network's mirror layer needs. Determinism and balance are preferred
/// over cut optimality.
///
/// A topology connected at the sense/delivery radius itself (every
/// uniform grid/mesh scenario with the default equal cs/interference
/// ranges) still collapses to a single shard — cutting a sensed or
/// delivery edge would reorder MAC decisions, which this planner never
/// does.
ShardPlan plan_shards(const std::vector<phy::Position>& positions, const phy::PhyParams& phy,
                      int max_shards);

}  // namespace ezflow::net

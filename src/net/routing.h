#pragma once

#include <map>
#include <vector>

#include "net/packet.h"

namespace ezflow::net {

/// Static per-flow source routing, the NOAH-equivalent the paper's
/// simulations use ("we set the routing to be static", Section 4.1; NOAH
/// agent, Section 5.1). Each flow is a fixed node path; a node's next hop
/// for a flow is the node after it on that path.
class StaticRouting {
public:
    /// Register a flow's path (>= 2 distinct nodes, no repeats).
    void add_flow(int flow_id, std::vector<NodeId> path);

    /// Next hop of `node` for `flow_id`. Throws for unknown flows or for
    /// nodes not on the path / the final destination.
    NodeId next_hop(int flow_id, NodeId node) const;

    /// Whether `node` appears on the flow's path before the destination.
    bool has_next_hop(int flow_id, NodeId node) const;

    const std::vector<NodeId>& path(int flow_id) const;

    /// All registered flow ids, ascending.
    std::vector<int> flow_ids() const;

private:
    std::map<int, std::vector<NodeId>> paths_;
};

}  // namespace ezflow::net

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "net/packet.h"

namespace ezflow::net {

/// Static per-flow source routing, the NOAH-equivalent the paper's
/// simulations use ("we set the routing to be static", Section 4.1; NOAH
/// agent, Section 5.1). Each flow is a fixed node path; a node's next hop
/// for a flow is the node after it on that path.
///
/// This class is the *builder* and reference implementation: add_flow
/// validates paths, path()/flow_ids() serve setup-time consumers (traffic
/// sources, agents, tracers), and next_hop()/has_next_hop() answer by
/// scanning the stored path. The per-packet forwarding plane does not use
/// the scan — it goes through the compiled RoutingTable below, which is
/// rebuilt from this builder and must answer identically.
class StaticRouting {
public:
    /// Node ids a path may use: any value in [-kMaxNodeId, kMaxNodeId].
    /// Network only ever produces dense ids from 0, but the builder is
    /// usable standalone; the bound (|id| <= 2^26) keeps the compiled
    /// table's dense node axis free of overflow and of sentinel
    /// collisions for every path the builder can accept.
    static constexpr NodeId kMaxNodeId = 1 << 26;

    /// Register a flow's path (>= 2 distinct in-range nodes, no repeats).
    void add_flow(int flow_id, std::vector<NodeId> path);

    /// Replace an existing flow's path (same validation as add_flow) and
    /// clear any suspension — the route-repair entry point. Throws for
    /// unknown flows.
    void update_flow(int flow_id, std::vector<NodeId> path);

    /// Take a flow out of service: every node answers "no next hop" until
    /// the flow is updated or resumed. The stored path is retained so
    /// setup-time consumers (src/dst queries) keep working. Idempotent.
    void suspend_flow(int flow_id);

    /// Put a suspended flow back in service on its stored path.
    void resume_flow(int flow_id);

    /// Whether the flow is currently suspended (false for unknown flows).
    bool is_suspended(int flow_id) const { return suspended_.count(flow_id) > 0; }

    /// Next hop of `node` for `flow_id`. Throws for unknown flows or for
    /// nodes not on the path / the final destination.
    NodeId next_hop(int flow_id, NodeId node) const;

    /// Whether `node` appears on the flow's path before the destination.
    bool has_next_hop(int flow_id, NodeId node) const;

    const std::vector<NodeId>& path(int flow_id) const;

    /// All registered flow ids, ascending.
    std::vector<int> flow_ids() const;

    /// Bumped on every successful mutation (add/update/suspend/resume);
    /// lets compiled tables detect staleness with one integer compare per
    /// lookup.
    std::uint64_t version() const { return version_; }

    /// Bumped only when the flow set grows (add_flow). While this is
    /// stable, every version bump is a per-flow change recorded in
    /// change_log(), so a compiled table can repair the touched rows
    /// instead of recompiling every flow.
    std::uint64_t structure_version() const { return structure_version_; }

    /// One entry per update/suspend/resume, in version order. Bounded:
    /// entries with version <= change_log_floor() may have been pruned,
    /// in which case a table compiled before the floor must fall back to
    /// a full compile.
    struct FlowChange {
        std::uint64_t version;
        int flow_id;
    };
    const std::vector<FlowChange>& change_log() const { return change_log_; }
    std::uint64_t change_log_floor() const { return log_floor_; }

private:
    static std::vector<NodeId> validated(std::vector<NodeId> path);
    void record_change(int flow_id);

    std::map<int, std::vector<NodeId>> paths_;
    std::set<int> suspended_;
    std::uint64_t version_ = 0;
    std::uint64_t structure_version_ = 0;
    std::vector<FlowChange> change_log_;
    std::uint64_t log_floor_ = 0;
};

/// Compiled forwarding table: dense [flow][node] -> next_hop arrays built
/// once from a StaticRouting builder, O(1) per forwarded packet (the
/// builder's scan is O(hops) and was the per-packet hot path on large
/// topologies). Lookups lazily recompile when the builder has grown, and
/// repair *incrementally* when only existing flows changed (route repair,
/// suspension): the builder's change log names the dirty flows and only
/// those rows are rewritten — O(changed flows * stride) instead of
/// O(flows * stride). Answers and error behaviour are identical to the
/// builder's by construction (pinned by tests/routing_table_test.cpp).
class RoutingTable {
public:
    explicit RoutingTable(const StaticRouting& builder) : builder_(&builder) {}

    /// Next hop of `node` for `flow_id`; same contract as
    /// StaticRouting::next_hop (throws std::invalid_argument for unknown
    /// flows and for nodes without a successor on the path).
    NodeId next_hop(int flow_id, NodeId node) const;

    /// Same contract as StaticRouting::has_next_hop.
    bool has_next_hop(int flow_id, NodeId node) const;

    /// Next hop, or kNoNextHop when the flow is unknown or the node has
    /// no successor — one probe for callers that would otherwise pair
    /// has_next_hop with next_hop. The sentinel sits at INT_MIN, outside
    /// the [-kMaxNodeId, kMaxNodeId] domain add_flow enforces, so it can
    /// never shadow a real next hop (and the bounded domain keeps
    /// node_stride_ arithmetic overflow-free).
    static constexpr NodeId kNoNextHop = std::numeric_limits<NodeId>::min();
    NodeId next_hop_or_none(int flow_id, NodeId node) const;

    /// Compiled dimensions (testing/introspection; compile on demand).
    int flow_count() const;
    NodeId node_stride() const;

private:
    void compile() const;
    void refresh() const;
    void ensure_fresh() const
    {
        if (compiled_version_ != builder_->version()) refresh();
    }
    /// Rewrite one flow's row from the builder. Returns false when the
    /// row cannot be patched in place (flow unknown to the compiled index
    /// or path uses nodes outside the compiled axis) and a full compile
    /// is required.
    bool patch_flow(int flow_id) const;
    /// Row base offset of a flow in next_, or -1 when unknown.
    std::int64_t flow_row(int flow_id) const;

    const StaticRouting* builder_;
    mutable std::uint64_t compiled_version_ = ~std::uint64_t{0};
    mutable std::uint64_t compiled_structure_version_ = ~std::uint64_t{0};
    /// Dense flow-id index over [flow_min_, flow_min_ + flow_slots_):
    /// slot_of_flow_[id - flow_min_] is the row, or -1. When flow ids are
    /// too sparse for a dense index (range much larger than count), the
    /// sorted (id, row) pairs in sparse_flows_ are binary-searched
    /// instead — O(log flows), flows are few when ids are wild.
    mutable int flow_min_ = 0;
    mutable std::int64_t flow_slots_ = 0;
    mutable std::vector<std::int32_t> slot_of_flow_;
    mutable std::vector<std::pair<int, std::int32_t>> sparse_flows_;
    /// Row-major [row * node_stride_ + (node - node_base_)] -> next hop
    /// or kNoNextHop. The base offset lets the dense axis cover whatever
    /// NodeId range the builder's paths actually use (the builder does
    /// not constrain ids; Network validates them separately).
    mutable std::vector<NodeId> next_;
    mutable NodeId node_base_ = 0;
    mutable NodeId node_stride_ = 0;
    mutable std::int32_t rows_ = 0;
};

}  // namespace ezflow::net

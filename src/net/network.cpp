#include "net/network.h"

#include <stdexcept>

namespace ezflow::net {

Network::Network(Config config)
    : config_(config),
      rng_(config.seed),
      channel_(scheduler_, util::Rng(config.seed ^ 0xC0FFEEULL).fork(), config.phy),
      contention_(scheduler_)
{
}

NodeId Network::add_node(phy::Position position)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(id, position, scheduler_, contention_, rng_.fork(),
                                            config_.mac, routing_table_));
    channel_.attach(nodes_.back()->phy());
    return id;
}

void Network::add_flow(int flow_id, std::vector<NodeId> path)
{
    for (NodeId n : path) {
        if (n < 0 || n >= node_count()) throw std::invalid_argument("Network::add_flow: unknown node");
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const double d = phy::distance(node(path[i]).phy().position(), node(path[i + 1]).phy().position());
        if (d > config_.phy.tx_range_m)
            throw std::invalid_argument("Network::add_flow: consecutive hops out of delivery range");
    }
    routing_.add_flow(flow_id, std::move(path));
}

Node& Network::node(NodeId id)
{
    if (id < 0 || id >= node_count()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Network::node(NodeId id) const
{
    if (id < 0 || id >= node_count()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[static_cast<std::size_t>(id)];
}

}  // namespace ezflow::net

#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace ezflow::net {

Network::Network(Config config) : config_(std::move(config)), rng_(config_.seed)
{
    const int shard_count = config_.shard_plan.empty() ? 1 : config_.shard_plan.shard_count;
    // Successive forks of one channel-RNG root: shard 0 receives the
    // first fork, which is exactly the serial reference's channel stream,
    // so an unsharded Network is byte-identical to the pre-shard build.
    util::Rng channel_root(config_.seed ^ 0xC0FFEEULL);
    shards_.reserve(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s)
        shards_.push_back(std::make_unique<Shard>(channel_root.fork(), config_.phy));
    set_phy_models(config_.models);
}

void Network::set_phy_models(const phy::PhyModelConfig& models)
{
    if (reference_mode_.force_reference_models || models.is_reference()) return;
    // Connected-cut sharding forks the channel RNG per shard; that is
    // provably equivalent to the serial reference only while no channel
    // ever draws (the reference models short-circuit every zero-loss
    // bernoulli). Non-reference models (fading, per-link error chains,
    // rate managers) do draw, and their streams would diverge between
    // shard counts — refuse instead of silently losing byte-identity.
    if (config_.shard_plan.connected_cut && shard_count() > 1)
        throw std::invalid_argument(
            "Network::set_phy_models: connected-cut sharding requires the reference PHY models "
            "(per-shard RNG streams diverge once a model draws)");
    for (auto& shard : shards_) shard->channel.set_models(models, config_.seed);
}

void Network::set_ampdu_max_mpdus(int k)
{
    for (auto& node : nodes_) node->mac().set_ampdu_max_mpdus(k);
}

void Network::set_reference_mode(const ReferenceModeFlags& flags)
{
    reference_mode_ = flags;
    for (auto& shard : shards_) shard->channel.set_reachability_cull(flags.reachability_cull);
    if (flags.force_reference_models) {
        for (auto& shard : shards_) {
            shard->channel.set_propagation_model(nullptr);
            shard->channel.set_rate_manager(nullptr);
            shard->channel.set_interference_mode(phy::PhyModelConfig::Interference::kReference);
        }
    }
}

NodeId Network::add_node(phy::Position position)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    int target = 0;
    if (!config_.shard_plan.empty()) {
        const auto& plan = config_.shard_plan.shard_of_node;
        if (static_cast<std::size_t>(id) >= plan.size())
            throw std::invalid_argument("Network::add_node: node id beyond the shard plan");
        target = plan[static_cast<std::size_t>(id)];
        if (target < 0 || target >= shard_count())
            throw std::invalid_argument("Network::add_node: shard plan names a bad shard");
    }
    Shard& home = *shards_[static_cast<std::size_t>(target)];
    nodes_.push_back(std::make_unique<Node>(id, position, home.scheduler, home.contention,
                                            rng_.fork(), config_.mac, routing_table_));
    shard_of_.push_back(target);
    home.channel.attach(nodes_.back()->phy());
    return id;
}

void Network::add_flow(int flow_id, std::vector<NodeId> path)
{
    for (NodeId n : path) {
        if (n < 0 || n >= node_count()) throw std::invalid_argument("Network::add_flow: unknown node");
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const double d = phy::distance(node(path[i]).phy().position(), node(path[i + 1]).phy().position());
        if (d > config_.phy.tx_range_m)
            throw std::invalid_argument("Network::add_flow: consecutive hops out of delivery range");
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (shard_of(path[i]) != shard_of(path[i + 1]))
            throw std::invalid_argument(
                "Network::add_flow: path crosses a shard boundary (radio hops are intra-shard; "
                "use ShardedEngine::post for wired handoffs)");
    }
    routing_.add_flow(flow_id, std::move(path));
}

Node& Network::node(NodeId id)
{
    if (id < 0 || id >= node_count()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Network::node(NodeId id) const
{
    if (id < 0 || id >= node_count()) throw std::out_of_range("Network::node: bad id");
    return *nodes_[static_cast<std::size_t>(id)];
}

int Network::shard_of(NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= shard_of_.size())
        throw std::out_of_range("Network::shard_of: bad id");
    return shard_of_[static_cast<std::size_t>(id)];
}

std::uint64_t Network::total_processed() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->scheduler.processed();
    return total;
}

std::uint64_t Network::total_transmissions() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->channel.transmissions();
    return total;
}

std::uint64_t Network::total_data_transmissions() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->channel.data_transmissions();
    return total;
}

void Network::set_node_down(NodeId id)
{
    Node& n = node(id);
    if (!n.is_up()) return;
    // MAC quiesced and radio wiped first, then the channel forgets the
    // PHY; in-flight signal-end events keep their pooled frame refs and
    // drain as tolerated no-ops at the dead PHY.
    n.teardown();
    shard(shard_of(id)).channel.detach(n.phy());
}

void Network::set_node_up(NodeId id)
{
    Node& n = node(id);
    if (n.is_up()) return;
    shard(shard_of(id)).channel.attach(n.phy());
    n.revive();
}

sim::ShardedEngine* Network::sharded_engine()
{
    if (shard_count() <= 1) return nullptr;
    if (!engine_) {
        std::vector<sim::Scheduler*> schedulers;
        schedulers.reserve(shards_.size());
        for (const auto& shard : shards_) schedulers.push_back(&shard->scheduler);
        sim::ShardedEngine::Options options;
        options.threads = shard_threads_;
        engine_ = std::make_unique<sim::ShardedEngine>(std::move(schedulers), options);
        if (config_.shard_plan.connected_cut) install_connected_cut_support();
    }
    return engine_.get();
}

void Network::install_connected_cut_support()
{
    const ShardPlan& plan = config_.shard_plan;
    for (int s = 0; s < shard_count(); ++s) {
        const std::vector<int>& boundary = plan.boundary_nodes[static_cast<std::size_t>(s)];
        if (boundary.empty()) continue;
        std::vector<NodeId> senders(boundary.begin(), boundary.end());
        shards_[static_cast<std::size_t>(s)]->channel.set_mirror_hook(
            std::move(senders),
            [this, s](const phy::NodePhy& sender, const phy::Frame& frame,
                      util::SimTime duration_us, std::uint64_t signal_id) {
                // Runs inside shard s's worker mid-epoch; post() is the
                // only cross-shard touchpoint (mutex-protected mailbox).
                const auto& targets =
                    config_.shard_plan
                        .ghost_targets_of_node[static_cast<std::size_t>(sender.id())];
                // Namespace the id by source shard: ghost ids can never
                // collide with the target channel's own signal ids (or
                // another shard's ghosts) in a PHY's active-signal list.
                const std::uint64_t ghost_id =
                    signal_id | (static_cast<std::uint64_t>(s) + 1) << 56;
                const util::SimTime at =
                    shards_[static_cast<std::size_t>(s)]->scheduler.now();
                for (int target : targets) {
                    // The frame is copied, not pool-shared: FrameRecord
                    // refcounts are not safe to touch from another shard.
                    engine_->post(s, target, at,
                                  [this, target, id = sender.id(), pos = sender.position(),
                                   frame, duration_us, ghost_id]() mutable {
                                      shard(target).channel.inject_ghost(
                                          id, pos, std::move(frame), duration_us, ghost_id);
                                  });
                }
            });
    }

    // Dynamic conservative horizon: no boundary node may transmit before
    // it. Two bounds per shard, the min over both taken across shards:
    //  * committed instants — armed SIFS/slot control triggers, CTS->data
    //    follow-ups and registered backoff expiries of the boundary MACs
    //    (commitments only ever move later, never earlier);
    //  * new decisions — every decision-to-air path in the MAC spans at
    //    least one SIFS (ACK/CTS/data-after-CTS at +SIFS, control retry
    //    at +slot, any contention registration at +DIFS or more), and a
    //    decision needs an event to run, so next_event_time() + SIFS
    //    bounds every transmission not yet committed.
    // Shards without boundary nodes never post and constrain nothing.
    const util::SimTime sifs = config_.mac.sifs_us;
    engine_->set_horizon_provider([this, sifs](util::SimTime, util::SimTime target) {
        util::SimTime horizon = target;
        const ShardPlan& shard_plan = config_.shard_plan;
        for (int s = 0; s < shard_count(); ++s) {
            const auto& boundary = shard_plan.boundary_nodes[static_cast<std::size_t>(s)];
            if (boundary.empty()) continue;
            for (int id : boundary) {
                const util::SimTime committed =
                    node(static_cast<NodeId>(id)).mac().earliest_committed_tx_at();
                if (committed >= 0 && committed < horizon) horizon = committed;
            }
            const util::SimTime next = shard(s).scheduler.next_event_time();
            if (next >= 0 && next + sifs < horizon) horizon = next + sifs;
        }
        return horizon;  // the engine clamps into (epoch start, target]
    });
}

void Network::run_until(util::SimTime t)
{
    if (shard_count() == 1) {
        shards_[0]->scheduler.run_until(t);
        return;
    }
    sharded_engine()->run_until(t);
}

Network::Shard& Network::shard(int s)
{
    if (s < 0 || s >= shard_count()) throw std::out_of_range("Network::shard: bad shard");
    return *shards_[static_cast<std::size_t>(s)];
}

const Network::Shard& Network::shard(int s) const
{
    if (s < 0 || s >= shard_count()) throw std::out_of_range("Network::shard: bad shard");
    return *shards_[static_cast<std::size_t>(s)];
}

}  // namespace ezflow::net

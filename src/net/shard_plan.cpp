#include "net/shard_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace ezflow::net {
namespace {

/// Union-find with path halving + union by size.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1)
    {
        for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

private:
    std::vector<int> parent_;
    std::vector<int> size_;
};

}  // namespace

ShardPlan plan_shards(const std::vector<phy::Position>& positions, const phy::PhyParams& phy,
                      int max_shards)
{
    const int n = static_cast<int>(positions.size());
    ShardPlan plan;
    if (n == 0 || max_shards <= 1) return plan;  // empty plan: serial reference

    // The same bound the Channel's reachability cull and interference
    // ledger use: beyond it a node contributes neither delivery, carrier
    // sense, nor ledger energy, so cutting there is conflict-free.
    const double radius = phy.conflict_radius_m();
    if (!(radius > 0.0)) throw std::invalid_argument("plan_shards: conflict radius must be > 0");

    // Spatial hash with cell size = conflict radius: any pair within the
    // radius lives in the same or an adjacent cell, so uniting each node
    // with in-radius nodes of its 3x3 neighborhood visits every conflict
    // edge in O(n) expected time.
    const auto cell_of = [radius](const phy::Position& p) {
        return std::pair<std::int64_t, std::int64_t>(
            static_cast<std::int64_t>(std::floor(p.x / radius)),
            static_cast<std::int64_t>(std::floor(p.y / radius)));
    };
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<int>> cells;
    for (int i = 0; i < n; ++i) cells[cell_of(positions[i])].push_back(i);

    UnionFind components(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const auto [cx, cy] = cell_of(positions[i]);
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
            for (std::int64_t dy = -1; dy <= 1; ++dy) {
                const auto neighbour = cells.find({cx + dx, cy + dy});
                if (neighbour == cells.end()) continue;
                for (int j : neighbour->second) {
                    if (j <= i) continue;  // each pair once
                    if (phy::distance(positions[i], positions[j]) <= radius)
                        components.unite(i, j);
                }
            }
        }
    }

    // Collect components as (min node id, size), ordered by min id.
    std::map<int, std::pair<int, int>> by_root;  // root -> {min id, size}
    for (int i = 0; i < n; ++i) {
        const int root = components.find(i);
        auto [it, inserted] = by_root.emplace(root, std::pair<int, int>{i, 0});
        it->second.first = std::min(it->second.first, i);
        ++it->second.second;
    }
    struct Component {
        int min_id;
        int size;
        int root;
    };
    std::vector<Component> comps;
    comps.reserve(by_root.size());
    for (const auto& [root, info] : by_root) comps.push_back({info.first, info.second, root});

    const int shard_count = std::min<int>(max_shards, static_cast<int>(comps.size()));

    // Greedy balanced packing: biggest components first (ties by min id
    // for determinism), each into the currently lightest shard.
    std::sort(comps.begin(), comps.end(), [](const Component& a, const Component& b) {
        if (a.size != b.size) return a.size > b.size;
        return a.min_id < b.min_id;
    });
    std::vector<std::int64_t> load(static_cast<std::size_t>(shard_count), 0);
    std::vector<int> shard_of_root_raw(static_cast<std::size_t>(n), -1);
    for (const Component& comp : comps) {
        int lightest = 0;
        for (int s = 1; s < shard_count; ++s)
            if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(lightest)])
                lightest = s;
        load[static_cast<std::size_t>(lightest)] += comp.size;
        shard_of_root_raw[static_cast<std::size_t>(comp.root)] = lightest;
    }

    // Relabel shards by ascending minimum node id so the result does not
    // depend on the packing visit order.
    std::vector<int> min_id_of_shard(static_cast<std::size_t>(shard_count),
                                     std::numeric_limits<int>::max());
    for (int i = 0; i < n; ++i) {
        const int raw = shard_of_root_raw[static_cast<std::size_t>(components.find(i))];
        min_id_of_shard[static_cast<std::size_t>(raw)] =
            std::min(min_id_of_shard[static_cast<std::size_t>(raw)], i);
    }
    std::vector<int> rank(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s) rank[static_cast<std::size_t>(s)] = s;
    std::sort(rank.begin(), rank.end(), [&](int a, int b) {
        return min_id_of_shard[static_cast<std::size_t>(a)] <
               min_id_of_shard[static_cast<std::size_t>(b)];
    });
    std::vector<int> relabel(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s)
        relabel[static_cast<std::size_t>(rank[static_cast<std::size_t>(s)])] = s;

    plan.shard_count = shard_count;
    plan.shard_of_node.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int raw = shard_of_root_raw[static_cast<std::size_t>(components.find(i))];
        plan.shard_of_node[static_cast<std::size_t>(i)] = relabel[static_cast<std::size_t>(raw)];
    }
    return plan;
}

}  // namespace ezflow::net

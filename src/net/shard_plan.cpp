#include "net/shard_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace ezflow::net {
namespace {

/// Union-find with path halving + union by size.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1)
    {
        for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

private:
    std::vector<int> parent_;
    std::vector<int> size_;
};

struct Component {
    int min_id;
    int size;
    int root;
};

/// Greedy balanced packing: biggest components first (ties by min id for
/// determinism), each into the currently lightest shard. Guarantees
/// max load - min load <= largest component (when a unit lands in the
/// lightest shard, that shard's new load exceeds no other shard's final
/// load by more than the unit; loads only grow).
std::vector<int> pack_greedy(const std::vector<Component>& comps, int shard_count,
                             std::vector<std::int64_t>& load)
{
    std::vector<int> order(comps.size());
    for (std::size_t u = 0; u < comps.size(); ++u) order[u] = static_cast<int>(u);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Component& ca = comps[static_cast<std::size_t>(a)];
        const Component& cb = comps[static_cast<std::size_t>(b)];
        if (ca.size != cb.size) return ca.size > cb.size;
        return ca.min_id < cb.min_id;
    });
    load.assign(static_cast<std::size_t>(shard_count), 0);
    std::vector<int> shard_of_unit(comps.size(), -1);
    for (int u : order) {
        int lightest = 0;
        for (int s = 1; s < shard_count; ++s)
            if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(lightest)])
                lightest = s;
        load[static_cast<std::size_t>(lightest)] += comps[static_cast<std::size_t>(u)].size;
        shard_of_unit[static_cast<std::size_t>(u)] = lightest;
    }
    return shard_of_unit;
}

/// Relabel shards so they ascend by their minimum node id: the result is
/// independent of the packing/refinement visit order.
std::vector<int> relabel_by_min_node(const std::vector<int>& shard_of_node_raw, int shard_count)
{
    std::vector<int> min_id_of_shard(static_cast<std::size_t>(shard_count),
                                     std::numeric_limits<int>::max());
    for (std::size_t i = 0; i < shard_of_node_raw.size(); ++i) {
        const int raw = shard_of_node_raw[i];
        min_id_of_shard[static_cast<std::size_t>(raw)] =
            std::min(min_id_of_shard[static_cast<std::size_t>(raw)], static_cast<int>(i));
    }
    std::vector<int> rank(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s) rank[static_cast<std::size_t>(s)] = s;
    std::sort(rank.begin(), rank.end(), [&](int a, int b) {
        return min_id_of_shard[static_cast<std::size_t>(a)] <
               min_id_of_shard[static_cast<std::size_t>(b)];
    });
    std::vector<int> relabel(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s)
        relabel[static_cast<std::size_t>(rank[static_cast<std::size_t>(s)])] = s;
    return relabel;
}

}  // namespace

ShardPlan plan_shards(const std::vector<phy::Position>& positions, const phy::PhyParams& phy,
                      int max_shards)
{
    const int n = static_cast<int>(positions.size());
    ShardPlan plan;
    if (n == 0 || max_shards <= 1) return plan;  // empty plan: serial reference

    // The same bound the Channel's reachability cull and interference
    // ledger use: beyond it a node contributes neither delivery, carrier
    // sense, nor ledger energy, so cutting there is conflict-free.
    const double radius = phy.conflict_radius_m();
    if (!(radius > 0.0)) throw std::invalid_argument("plan_shards: conflict radius must be > 0");
    // Within radius_hard an edge may carry decodable frames or carrier-
    // sense energy, whose event order is irreducible — such edges are
    // never cut. Between radius_hard and the conflict radius an edge is
    // interference-only (pure SINR-ledger power): cuttable, repaired at
    // run time by ghost mirroring.
    const double radius_hard = std::max(phy.tx_range_m, phy.cs_range_m);

    // Spatial hash with cell size = conflict radius: any pair within the
    // radius lives in the same or an adjacent cell, so scanning each
    // node's 3x3 neighborhood visits every conflict edge in O(n)
    // expected time.
    const auto cell_of = [radius](const phy::Position& p) {
        return std::pair<std::int64_t, std::int64_t>(
            static_cast<std::int64_t>(std::floor(p.x / radius)),
            static_cast<std::int64_t>(std::floor(p.y / radius)));
    };
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<int>> cells;
    for (int i = 0; i < n; ++i) cells[cell_of(positions[i])].push_back(i);

    UnionFind hard(static_cast<std::size_t>(n));
    std::vector<std::pair<int, int>> soft_pairs;  // interference-only edges
    for (int i = 0; i < n; ++i) {
        const auto [cx, cy] = cell_of(positions[i]);
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
            for (std::int64_t dy = -1; dy <= 1; ++dy) {
                const auto neighbour = cells.find({cx + dx, cy + dy});
                if (neighbour == cells.end()) continue;
                for (int j : neighbour->second) {
                    if (j <= i) continue;  // each pair once
                    const double d = phy::distance(positions[i], positions[j]);
                    if (d > radius) continue;
                    if (d <= radius_hard)
                        hard.unite(i, j);
                    else
                        soft_pairs.push_back({i, j});
                }
            }
        }
    }

    // An interference-only edge joining two hard components is what makes
    // a connected cut possible (and necessary). Without any, the hard
    // components coincide with the full conflict components and the plan
    // below reduces to the original edge-free partition.
    bool cross_component = false;
    for (const auto& [i, j] : soft_pairs) {
        if (hard.find(i) != hard.find(j)) {
            cross_component = true;
            break;
        }
    }

    // Collect hard components as (min node id, size), ordered by min id —
    // the deterministic unit indexing for packing and refinement.
    std::map<int, std::pair<int, int>> by_root;  // root -> {min id, size}
    for (int i = 0; i < n; ++i) {
        const int root = hard.find(i);
        auto [it, inserted] = by_root.emplace(root, std::pair<int, int>{i, 0});
        it->second.first = std::min(it->second.first, i);
        ++it->second.second;
    }
    std::vector<Component> comps;
    comps.reserve(by_root.size());
    for (const auto& [root, info] : by_root) comps.push_back({info.first, info.second, root});
    std::sort(comps.begin(), comps.end(),
              [](const Component& a, const Component& b) { return a.min_id < b.min_id; });

    const int units = static_cast<int>(comps.size());
    const int shard_count = std::min<int>(max_shards, units);

    std::vector<int> unit_of_node(static_cast<std::size_t>(n), -1);
    {
        std::map<int, int> unit_of_root;
        for (int u = 0; u < units; ++u) unit_of_root[comps[static_cast<std::size_t>(u)].root] = u;
        for (int i = 0; i < n; ++i)
            unit_of_node[static_cast<std::size_t>(i)] = unit_of_root[hard.find(i)];
    }

    std::vector<std::int64_t> load;
    std::vector<int> shard_of_unit = pack_greedy(comps, shard_count, load);

    if (cross_component && shard_count > 1) {
        // Bounded deterministic KL-style refinement: move whole units to
        // the shard they have the most interference edges into, as long
        // as the move strictly reduces the cut and keeps the greedy
        // balance bound (max - min load <= largest unit). Units are
        // visited in ascending min-node-id order and ties prefer the
        // lowest target shard, so the outcome is independent of any
        // container iteration quirks.
        std::map<std::pair<int, int>, std::int64_t> weight;  // (unit, unit) -> edges
        for (const auto& [i, j] : soft_pairs) {
            const int a = unit_of_node[static_cast<std::size_t>(i)];
            const int b = unit_of_node[static_cast<std::size_t>(j)];
            if (a != b) ++weight[{std::min(a, b), std::max(a, b)}];
        }
        std::vector<std::vector<std::pair<int, std::int64_t>>> adjacency(
            static_cast<std::size_t>(units));
        for (const auto& [edge, w] : weight) {
            adjacency[static_cast<std::size_t>(edge.first)].push_back({edge.second, w});
            adjacency[static_cast<std::size_t>(edge.second)].push_back({edge.first, w});
        }
        std::int64_t largest = 0;
        for (const Component& comp : comps) largest = std::max<std::int64_t>(largest, comp.size);
        const auto balanced = [&](const std::vector<std::int64_t>& candidate) {
            const auto [lo, hi] = std::minmax_element(candidate.begin(), candidate.end());
            return *hi - *lo <= largest;
        };
        constexpr int kMaxPasses = 8;
        for (int pass = 0; pass < kMaxPasses; ++pass) {
            bool moved = false;
            for (int u = 0; u < units; ++u) {
                const int s = shard_of_unit[static_cast<std::size_t>(u)];
                const std::int64_t size = comps[static_cast<std::size_t>(u)].size;
                if (load[static_cast<std::size_t>(s)] == size) continue;  // never empty a shard
                std::vector<std::int64_t> to_shard(static_cast<std::size_t>(shard_count), 0);
                for (const auto& [v, w] : adjacency[static_cast<std::size_t>(u)])
                    to_shard[static_cast<std::size_t>(shard_of_unit[static_cast<std::size_t>(v)])] +=
                        w;
                int best_target = -1;
                std::int64_t best_gain = 0;
                for (int t = 0; t < shard_count; ++t) {
                    if (t == s) continue;
                    const std::int64_t gain = to_shard[static_cast<std::size_t>(t)] -
                                              to_shard[static_cast<std::size_t>(s)];
                    if (gain <= best_gain) continue;  // strict: first best target wins ties
                    std::vector<std::int64_t> candidate = load;
                    candidate[static_cast<std::size_t>(s)] -= size;
                    candidate[static_cast<std::size_t>(t)] += size;
                    if (!balanced(candidate)) continue;
                    best_target = t;
                    best_gain = gain;
                }
                if (best_target < 0) continue;
                load[static_cast<std::size_t>(s)] -= size;
                load[static_cast<std::size_t>(best_target)] += size;
                shard_of_unit[static_cast<std::size_t>(u)] = best_target;
                moved = true;
            }
            if (!moved) break;
        }
    }

    std::vector<int> shard_of_node_raw(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        shard_of_node_raw[static_cast<std::size_t>(i)] =
            shard_of_unit[static_cast<std::size_t>(unit_of_node[static_cast<std::size_t>(i)])];
    const std::vector<int> relabel = relabel_by_min_node(shard_of_node_raw, shard_count);

    plan.shard_count = shard_count;
    plan.shard_of_node.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        plan.shard_of_node[static_cast<std::size_t>(i)] =
            relabel[static_cast<std::size_t>(shard_of_node_raw[static_cast<std::size_t>(i)])];

    // Boundary/ghost-target wiring: every cut edge is interference-only
    // by construction (hard components are atomic), so each endpoint
    // mirrors into the other's shard.
    plan.boundary_nodes.assign(static_cast<std::size_t>(shard_count), {});
    plan.ghost_targets_of_node.assign(static_cast<std::size_t>(n), {});
    bool any_cut = false;
    for (const auto& [i, j] : soft_pairs) {
        const int si = plan.shard_of_node[static_cast<std::size_t>(i)];
        const int sj = plan.shard_of_node[static_cast<std::size_t>(j)];
        if (si == sj) continue;
        any_cut = true;
        plan.ghost_targets_of_node[static_cast<std::size_t>(i)].push_back(sj);
        plan.ghost_targets_of_node[static_cast<std::size_t>(j)].push_back(si);
        plan.boundary_nodes[static_cast<std::size_t>(si)].push_back(i);
        plan.boundary_nodes[static_cast<std::size_t>(sj)].push_back(j);
    }
    if (any_cut) {
        plan.connected_cut = true;
        for (auto& list : plan.boundary_nodes) {
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
        }
        for (auto& list : plan.ghost_targets_of_node) {
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
        }
    } else {
        plan.boundary_nodes.clear();
        plan.ghost_targets_of_node.clear();
    }
    return plan;
}

}  // namespace ezflow::net

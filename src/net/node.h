#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mac/dcf.h"
#include "net/packet.h"
#include "net/routing.h"
#include "phy/phy.h"

namespace ezflow::net {

/// A mesh node: one radio (PHY + DCF MAC) plus the forwarding plane.
///
/// Received data packets addressed to this node are either delivered to the
/// local sink (end of path) or re-enqueued toward the flow's next hop, in
/// the per-successor forwarding queue the paper prescribes. Locally
/// generated traffic uses a separate "own traffic" queue so forwarded
/// packets are never starved by the source role (Section 3.1).
class Node final : public mac::MacCallbacks {
public:
    using DeliveryHandler = std::function<void(const Packet&)>;
    using SniffHandler = std::function<void(const phy::Frame&)>;
    using FirstTxHandler = std::function<void(const mac::QueueKey&, const Packet&)>;
    using TxEventHandler = std::function<void(const mac::QueueKey&, const Packet&)>;
    /// Returns true when it consumed the packet (e.g. a routing-layer
    /// pacing queue took it instead of the MAC).
    using ForwardInterceptor = std::function<bool(const mac::QueueKey&, const Packet&)>;

    Node(NodeId id, phy::Position position, sim::Scheduler& scheduler,
         mac::ContentionCoordinator& coordinator, util::Rng rng, const mac::MacParams& mac_params,
         const RoutingTable& routing);

    NodeId id() const { return id_; }
    phy::NodePhy& phy() { return phy_; }
    const phy::NodePhy& phy() const { return phy_; }
    mac::DcfMac& mac() { return mac_; }
    const mac::DcfMac& mac() const { return mac_; }

    /// Inject a locally generated packet (source role; moved into the
    /// own-traffic queue). Returns false when the queue dropped it.
    bool send(Packet packet);

    /// The MAC interface queue locally generated traffic enters, or
    /// nullptr before the first send. Backpressure-gated sources register
    /// their vacancy callbacks on it.
    mac::MacQueue* own_traffic_queue(int flow_id);

    /// Account `count` source-side drops a gated source skipped in
    /// closed form (the per-packet reference would have routed each
    /// through send() individually).
    void count_gated_source_drops(std::uint64_t count) { source_queue_drops_ += count; }

    /// Upper-layer delivery for packets whose end-to-end destination is
    /// this node. Multiple handlers may subscribe (sink, meters, taps);
    /// each sees every delivered packet.
    void add_delivery_handler(DeliveryHandler handler) { delivery_.push_back(std::move(handler)); }

    /// Promiscuous observers (EZ-Flow BOE, debug taps). All registered
    /// handlers see every decoded frame not addressed to this node.
    void add_sniff_handler(SniffHandler handler) { sniffers_.push_back(std::move(handler)); }
    /// Observers of first on-air transmission attempts (BOE send hook).
    void add_first_tx_handler(FirstTxHandler handler) { first_tx_.push_back(std::move(handler)); }
    /// Observers of MAC completion events (success after ACK / retry drop).
    void add_tx_success_handler(TxEventHandler handler) { tx_success_.push_back(std::move(handler)); }

    /// Intercept outgoing packets (source and forwarded) before they reach
    /// the MAC. Used by the rate-pacing EZ-Flow variant (core/pacer.h).
    /// At most one interceptor can be installed.
    void set_forward_interceptor(ForwardInterceptor interceptor);
    /// Whether an interceptor is installed — the pacer holds packets
    /// outside the MAC queues, so the end-to-end drop audit must stand
    /// down when this is true.
    bool has_interceptor() const { return static_cast<bool>(interceptor_); }

    // --- fault injection (orchestrated by Network::set_node_down/up) ---
    /// Quiesce the MAC (flushing queues into drops_node_down) and kill
    /// the radio. The caller detaches the PHY from the channel.
    void teardown();
    /// Power the radio back on and revive the MAC. The caller reattaches
    /// the PHY to the channel first.
    void revive();
    bool is_up() const { return up_; }

    // Forwarding statistics.
    std::uint64_t forwarded() const { return forwarded_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t forward_queue_drops() const { return forward_queue_drops_; }
    std::uint64_t source_queue_drops() const { return source_queue_drops_; }
    /// Packets refused because this node was down (send/forward into a
    /// quiesced MAC); queue flushes count separately, per queue.
    std::uint64_t drops_node_down() const { return drops_node_down_; }
    /// Packets abandoned because the flow had no next hop here (flow
    /// suspended after a partition, or repair in progress).
    std::uint64_t drops_unroutable() const { return drops_unroutable_; }
    /// Packets parked in the per-originator reorder buffers: received out
    /// of order from an A-MPDU and awaiting their predecessors (counts as
    /// in-flight backlog for the drop audit's conservation laws).
    std::uint64_t reorder_buffered() const;

    // --- mac::MacCallbacks ---
    void mac_rx(const phy::Frame& frame) override;
    void mac_sniffed(const phy::Frame& frame) override;
    void mac_first_tx(const mac::QueueKey& key, const Packet& packet) override;
    void mac_tx_success(const mac::QueueKey& key, const Packet& packet) override;
    void mac_tx_drop(const mac::QueueKey& key, const Packet& packet) override;
    void mac_rx_aggregated(const phy::Frame& frame, std::uint64_t ok_bits,
                           std::uint32_t release_below) override;

private:
    /// Deliver locally or forward toward the next hop — the single-packet
    /// receive path shared by mac_rx and the reorder-buffer release.
    void handle_packet(const Packet& packet);

    /// Per-originator reorder stream: MPDUs of one A-MPDU sender are
    /// released upward strictly in sequence order. `next_seq` is the
    /// lowest sequence not yet released; `held` parks out-of-order
    /// arrivals until their predecessors arrive or the sender's advertised
    /// window start (release_below) flushes past an abandoned hole.
    struct ReorderStream {
        std::uint32_t next_seq = 0;
        std::map<std::uint32_t, Packet> held;
    };
    NodeId id_;
    phy::NodePhy phy_;
    mac::DcfMac mac_;
    const RoutingTable& routing_;

    std::vector<DeliveryHandler> delivery_;
    std::vector<SniffHandler> sniffers_;
    std::vector<FirstTxHandler> first_tx_;
    std::vector<TxEventHandler> tx_success_;
    ForwardInterceptor interceptor_;
    std::map<NodeId, ReorderStream> reorder_;

    bool up_ = true;
    std::uint64_t forwarded_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t forward_queue_drops_ = 0;
    std::uint64_t source_queue_drops_ = 0;
    std::uint64_t drops_node_down_ = 0;
    std::uint64_t drops_unroutable_ = 0;
};

}  // namespace ezflow::net

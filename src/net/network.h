#pragma once

#include <memory>
#include <vector>

#include "mac/contention.h"
#include "mac/mac_params.h"
#include "net/node.h"
#include "net/routing.h"
#include "phy/channel.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::net {

/// Everything a simulation needs, wired together: scheduler, channel,
/// nodes, routing. Owns all components; nodes are addressed by dense ids
/// in creation order.
class Network {
public:
    struct Config {
        phy::PhyParams phy;
        mac::MacParams mac;
        std::uint64_t seed = 1;
    };

    explicit Network(Config config);
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Create a node at `position`; returns its id (dense, from 0).
    NodeId add_node(phy::Position position);

    /// Register a static flow path. All nodes must already exist and
    /// consecutive path nodes must be within delivery range.
    void add_flow(int flow_id, std::vector<NodeId> path);

    Node& node(NodeId id);
    const Node& node(NodeId id) const;
    int node_count() const { return static_cast<int>(nodes_.size()); }

    sim::Scheduler& scheduler() { return scheduler_; }
    phy::Channel& channel() { return channel_; }
    mac::ContentionCoordinator& contention() { return contention_; }
    StaticRouting& routing() { return routing_; }
    const StaticRouting& routing() const { return routing_; }
    /// The compiled O(1) forwarding table over routing(); what every
    /// node's per-packet forwarding consults (it tracks the builder
    /// automatically, so flows may still be added after nodes).
    const RoutingTable& routing_table() const { return routing_table_; }
    const Config& config() const { return config_; }

    /// Fork an independent RNG stream from the network's root seed
    /// (for traffic sources, agents, etc.).
    util::Rng fork_rng() { return rng_.fork(); }

    /// Advance simulated time.
    void run_until(util::SimTime t) { scheduler_.run_until(t); }
    util::SimTime now() const { return scheduler_.now(); }

private:
    Config config_;
    sim::Scheduler scheduler_;
    util::Rng rng_;
    phy::Channel channel_;
    mac::ContentionCoordinator contention_;  ///< shared by every node's MAC
    StaticRouting routing_;
    RoutingTable routing_table_{routing_};
    std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ezflow::net

#pragma once

#include <memory>
#include <vector>

#include "mac/contention.h"
#include "mac/mac_params.h"
#include "net/node.h"
#include "net/routing.h"
#include "net/shard_plan.h"
#include "phy/channel.h"
#include "sim/scheduler.h"
#include "sim/sharded_engine.h"
#include "util/rng.h"

namespace ezflow::net {

/// The reference-path switches, unified in one place. The defaults are the
/// golden-pinned reference behaviour; tests that want to prove an
/// optimisation is outcome-identical flip the corresponding flag through
/// `Network::set_reference_mode` instead of hunting down per-component
/// setters. `force_reference_models` additionally overrides any
/// `Config::models` selection back to the reference PHY (two-ray, reference
/// capture, fixed rate).
struct ReferenceModeFlags {
    /// Channel iterates precomputed reachability sets (false: the
    /// full-broadcast reference scan — outcome-identical by construction).
    bool reachability_cull = true;
    /// Saturated sources gate injection on MAC queue backpressure (false:
    /// the reference timer-driven refill). Read by traffic::Source at
    /// construction; per-source setters still override.
    bool backpressure_gating = true;
    /// Discard any configured PHY models and run the reference PHY.
    bool force_reference_models = false;
};

/// Everything a simulation needs, wired together: scheduler, channel,
/// nodes, routing. Owns all components; nodes are addressed by dense ids
/// in creation order.
///
/// With a ShardPlan in the config the Network is space-parallel: every
/// shard owns its own Scheduler/Channel/ContentionCoordinator, nodes
/// bind to their shard's trio, and run_until() drives the shards in
/// lockstep epochs on sim::ShardedEngine. The plan guarantees no radio
/// edge crosses shards (see plan_shards), so sharded execution is
/// byte-identical to the serial reference. Without a plan (the default)
/// there is exactly one shard and execution is the serial reference
/// itself.
class Network {
public:
    struct Config {
        phy::PhyParams phy;
        mac::MacParams mac;
        /// PHY model selection (propagation / interference / rate). The
        /// default is the reference configuration, which is an exact no-op
        /// on every channel. Applied to all shards at construction; can be
        /// re-applied later via set_phy_models (before traffic starts).
        phy::PhyModelConfig models;
        std::uint64_t seed = 1;
        /// Upper bound on shards a topology generator may plan for; the
        /// generators compute `shard_plan` from this before construction.
        int max_shards = 1;
        /// Node-to-shard assignment (empty: single shard, serial
        /// reference). Must cover every node id that will be added.
        ShardPlan shard_plan;
    };

    explicit Network(Config config);
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Create a node at `position`; returns its id (dense, from 0).
    NodeId add_node(phy::Position position);

    /// Register a static flow path. All nodes must already exist,
    /// consecutive path nodes must be within delivery range, and the
    /// whole path must stay inside one shard (radio hops cannot cross
    /// the partition; cross-shard wired handoffs go through
    /// sim::ShardedEngine::post instead).
    void add_flow(int flow_id, std::vector<NodeId> path);

    Node& node(NodeId id);
    const Node& node(NodeId id) const;
    int node_count() const { return static_cast<int>(nodes_.size()); }

    /// Shard 0's scheduler/channel/coordinator — in the unsharded case
    /// (every canned scenario) the only ones, i.e. the serial reference.
    sim::Scheduler& scheduler() { return shards_[0]->scheduler; }
    phy::Channel& channel() { return shards_[0]->channel; }
    mac::ContentionCoordinator& contention() { return shards_[0]->contention; }

    int shard_count() const { return static_cast<int>(shards_.size()); }
    int shard_of(NodeId id) const;
    sim::Scheduler& scheduler_for(NodeId id) { return shard(shard_of(id)).scheduler; }
    sim::Scheduler& shard_scheduler(int s) { return shard(s).scheduler; }
    phy::Channel& shard_channel(int s) { return shard(s).channel; }

    /// Aggregates across shards (equal to the singular accessors'
    /// counters when shard_count() == 1).
    std::uint64_t total_processed() const;
    std::uint64_t total_transmissions() const;
    std::uint64_t total_data_transmissions() const;
    std::uint64_t shard_processed(int s) const { return shard(s).scheduler.processed(); }

    StaticRouting& routing() { return routing_; }
    const StaticRouting& routing() const { return routing_; }
    /// The compiled O(1) forwarding table over routing(); what every
    /// node's per-packet forwarding consults (it tracks the builder
    /// automatically, so flows may still be added after nodes).
    const RoutingTable& routing_table() const { return routing_table_; }
    const Config& config() const { return config_; }

    /// Fork an independent RNG stream from the network's root seed
    /// (for traffic sources, agents, etc.).
    util::Rng fork_rng() { return rng_.fork(); }

    /// Apply a PHY model selection to every shard's channel. A reference
    /// config (or force_reference_models) is an exact no-op. Install
    /// models before traffic starts — swapping mid-run would tear
    /// per-link state out from under in-flight frames.
    void set_phy_models(const phy::PhyModelConfig& models);

    /// Set the A-MPDU batch size on every node's MAC (1 = legacy
    /// single-MSDU pipeline, the golden-pinned default). Call after the
    /// topology is built and before traffic starts.
    void set_ampdu_max_mpdus(int k);

    /// Flip the unified reference-path switches (see ReferenceModeFlags).
    /// Takes effect immediately on every shard's channel; the
    /// backpressure-gating default is read by traffic::Source at
    /// construction.
    void set_reference_mode(const ReferenceModeFlags& flags);
    const ReferenceModeFlags& reference_mode() const { return reference_mode_; }

    /// Worker threads for the sharded engine (<= 0: hardware
    /// concurrency). Takes effect when the engine is first built, i.e.
    /// set it before the first run_until(). No effect on results —
    /// sharded execution is deterministic for any thread count.
    void set_shard_threads(int threads) { shard_threads_ = threads; }

    /// The epoch driver; built on demand when shard_count() > 1 (null
    /// for a single shard — run_until drives the scheduler directly).
    /// For a connected-cut plan the first build also installs the
    /// boundary-proxy layer: every boundary node's transmissions are
    /// mirrored into the neighbouring shards' channels as read-only
    /// ghost signals, and the epoch horizon is derived dynamically from
    /// the boundary MACs' committed transmission times (see
    /// sim::ShardedEngine::set_horizon_provider).
    sim::ShardedEngine* sharded_engine();

    // --- fault injection ---
    /// Graceful node teardown: quiesce the MAC (queues flush into
    /// drops_node_down, gated sources wake onto their backoff path),
    /// power off the radio, and detach it from its shard's channel —
    /// invalidating the reachability cache. In-flight frames from the
    /// dying node still complete at their receivers (the energy is on
    /// the air); frames to it die unheard. Idempotent.
    void set_node_down(NodeId id);
    /// Revival: reattach the PHY, power it on, revive the MAC. Routing
    /// repair is the fault injector's job, not Network's. Idempotent.
    void set_node_up(NodeId id);
    bool node_is_up(NodeId id) const { return node(id).is_up(); }

    /// Advance simulated time.
    void run_until(util::SimTime t);
    util::SimTime now() const { return shards_[0]->scheduler.now(); }

private:
    struct Shard {
        sim::Scheduler scheduler;
        phy::Channel channel;
        mac::ContentionCoordinator contention;
        Shard(util::Rng channel_rng, const phy::PhyParams& params)
            : channel(scheduler, std::move(channel_rng), params), contention(scheduler)
        {
        }
    };

    Shard& shard(int s);
    const Shard& shard(int s) const;

    /// Wire the ghost-mirror hooks and the dynamic horizon provider for a
    /// connected-cut plan (called once, when the engine is built).
    void install_connected_cut_support();

    Config config_;
    util::Rng rng_;
    ReferenceModeFlags reference_mode_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<int> shard_of_;  ///< dense by node id
    StaticRouting routing_;
    RoutingTable routing_table_{routing_};
    std::vector<std::unique_ptr<Node>> nodes_;
    int shard_threads_ = 0;
    std::unique_ptr<sim::ShardedEngine> engine_;
};

}  // namespace ezflow::net

#include "net/topo_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/shard_plan.h"
#include "util/rng.h"

namespace ezflow::net {

namespace {

/// The i-th of `count` indices spread evenly over [0, extent), biased to
/// the interior (count == 1 picks the middle) so crossing flows meet at
/// interior relays instead of hugging the lattice rim.
int spread_index(int i, int count, int extent)
{
    if (extent <= 1) return 0;
    const int index = ((i + 1) * extent) / (count + 1);
    return std::min(index, extent - 1);
}

/// Instantiate a planned topology as a live Network + labels. When the
/// config allows more than one shard, the planner partitions the layout
/// along the radio conflict graph before construction (a connected
/// topology still collapses to a single shard — the serial reference).
Scenario instantiate(const Topology& topo, Network::Config config)
{
    if (config.max_shards > 1 && config.shard_plan.empty())
        config.shard_plan = plan_shards(topo.positions, config.phy, config.max_shards);
    Scenario scenario;
    scenario.network = std::make_unique<Network>(std::move(config));
    for (int i = 0; i < topo.node_count(); ++i) {
        const NodeId id = scenario.network->add_node(topo.positions[static_cast<std::size_t>(i)]);
        scenario.labels[id] = "N" + std::to_string(id);
    }
    return scenario;
}

Network::Config grid_config(const GridSpec& spec, std::uint64_t seed)
{
    Network::Config config = default_config(seed);
    if (spec.tx_range_m > 0) config.phy.tx_range_m = spec.tx_range_m;
    if (spec.cs_range_m > 0) config.phy.cs_range_m = spec.cs_range_m;
    if (spec.interference_range_m > 0)
        config.phy.interference_range_m = spec.interference_range_m;
    config.max_shards = spec.max_shards;
    return config;
}

/// Convergecast source candidates: the far row and far column (the rim
/// opposite the gateway at node 0), farthest-first so small source
/// counts pick the deep corner region. Local (single-grid) node ids.
std::vector<NodeId> convergecast_rim(int cols, int rows)
{
    std::vector<NodeId> rim;
    for (int c = cols - 1; c >= 0; --c) rim.push_back((rows - 1) * cols + c);
    for (int r = rows - 2; r >= 1; --r) rim.push_back(r * cols + (cols - 1));
    std::stable_sort(rim.begin(), rim.end(), [cols](NodeId a, NodeId b) {
        const int da = a / cols + a % cols;
        const int db = b / cols + b % cols;
        return da > db;
    });
    return rim;
}

void add_planned_flow(Scenario& scenario, int flow_id, std::vector<NodeId> path, double start_s,
                      double duration_s)
{
    scenario.network->add_flow(flow_id, path);
    scenario.flows.push_back(FlowPlan{flow_id, std::move(path), start_s, start_s + duration_s});
}

}  // namespace

bool Topology::has_link(NodeId a, NodeId b) const
{
    if (a < 0 || a >= node_count()) return false;
    const auto& n = neighbours[static_cast<std::size_t>(a)];
    return std::binary_search(n.begin(), n.end(), b);
}

void rebuild_links(Topology& topo)
{
    const int n = topo.node_count();
    topo.neighbours.assign(static_cast<std::size_t>(n), {});
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            if (phy::distance(topo.positions[static_cast<std::size_t>(a)],
                              topo.positions[static_cast<std::size_t>(b)]) <= topo.link_range_m) {
                topo.neighbours[static_cast<std::size_t>(a)].push_back(b);
                topo.neighbours[static_cast<std::size_t>(b)].push_back(a);
            }
        }
    }
    // b-loop order already appends ascending ids for the lower endpoint;
    // the mirrored entries arrive ascending in a too, so lists stay sorted.
}

Topology make_grid_topology(int cols, int rows, double spacing_m)
{
    if (cols < 1 || rows < 1) throw std::invalid_argument("make_grid_topology: empty lattice");
    if (spacing_m <= 0) throw std::invalid_argument("make_grid_topology: bad spacing");
    Topology topo;
    topo.positions.reserve(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            topo.positions.push_back(phy::Position{c * spacing_m, r * spacing_m});
    rebuild_links(topo);
    return topo;
}

Topology make_random_topology(int nodes, double width_m, double height_m, double link_range_m,
                              std::uint64_t seed)
{
    if (nodes < 1) throw std::invalid_argument("make_random_topology: need at least one node");
    if (width_m < 0 || height_m < 0 || link_range_m <= 0)
        throw std::invalid_argument("make_random_topology: bad geometry");
    Topology topo;
    topo.link_range_m = link_range_m;
    util::Rng rng(seed ^ 0x70D0'5EEDULL);
    // Connected by construction: every node after the first is re-drawn
    // until it lands within link range of an already-placed node (uniform
    // scatter alone is almost never connected at mesh-realistic
    // densities). A node that cannot attach within the draw budget
    // restarts the whole layout; is_connected still validates the result.
    constexpr int kLayoutAttempts = 64;
    constexpr int kDrawsPerNode = 512;
    for (int attempt = 0; attempt < kLayoutAttempts; ++attempt) {
        topo.positions.clear();
        topo.positions.push_back(
            phy::Position{rng.uniform_real(0.0, width_m), rng.uniform_real(0.0, height_m)});
        bool stuck = false;
        while (static_cast<int>(topo.positions.size()) < nodes && !stuck) {
            stuck = true;
            for (int draw = 0; draw < kDrawsPerNode; ++draw) {
                const phy::Position candidate{rng.uniform_real(0.0, width_m),
                                              rng.uniform_real(0.0, height_m)};
                const bool attaches =
                    std::any_of(topo.positions.begin(), topo.positions.end(),
                                [&](const phy::Position& placed) {
                                    return phy::distance(candidate, placed) <= link_range_m;
                                });
                if (attaches) {
                    topo.positions.push_back(candidate);
                    stuck = false;
                    break;
                }
            }
        }
        if (stuck) continue;
        rebuild_links(topo);
        if (is_connected(topo)) return topo;
    }
    throw std::runtime_error("make_random_topology: no connected layout in " +
                             std::to_string(kLayoutAttempts) + " attempts (density too low)");
}

bool is_connected(const Topology& topo)
{
    const int n = topo.node_count();
    if (n <= 1) return true;
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::vector<NodeId> frontier{0};
    seen[0] = 1;
    int reached = 1;
    while (!frontier.empty()) {
        const NodeId at = frontier.back();
        frontier.pop_back();
        for (NodeId next : topo.neighbours[static_cast<std::size_t>(at)]) {
            if (seen[static_cast<std::size_t>(next)] == 0) {
                seen[static_cast<std::size_t>(next)] = 1;
                ++reached;
                frontier.push_back(next);
            }
        }
    }
    return reached == n;
}

std::vector<NodeId> shortest_path(const Topology& topo, NodeId src, NodeId dst)
{
    const int n = topo.node_count();
    if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) return {};
    // BFS hop distances from the destination, then walk downhill from the
    // source taking the smallest-id neighbour at every step — shortest by
    // construction and deterministic under ties.
    constexpr int kUnreached = -1;
    std::vector<int> dist(static_cast<std::size_t>(n), kUnreached);
    std::vector<NodeId> queue{dst};
    dist[static_cast<std::size_t>(dst)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const NodeId at = queue[head];
        for (NodeId next : topo.neighbours[static_cast<std::size_t>(at)]) {
            if (dist[static_cast<std::size_t>(next)] == kUnreached) {
                dist[static_cast<std::size_t>(next)] = dist[static_cast<std::size_t>(at)] + 1;
                queue.push_back(next);
            }
        }
    }
    if (dist[static_cast<std::size_t>(src)] == kUnreached) return {};
    std::vector<NodeId> path{src};
    NodeId at = src;
    while (at != dst) {
        const int d = dist[static_cast<std::size_t>(at)];
        for (NodeId next : topo.neighbours[static_cast<std::size_t>(at)]) {
            if (dist[static_cast<std::size_t>(next)] == d - 1) {
                path.push_back(next);
                at = next;
                break;  // neighbours are sorted: first match is smallest id
            }
        }
    }
    return path;
}

Scenario make_grid_cross(const GridSpec& spec, std::uint64_t seed)
{
    if (spec.cols < 2 || spec.rows < 2)
        throw std::invalid_argument("make_grid_cross: need at least a 2x2 grid");
    if (spec.cross_flows < 1) throw std::invalid_argument("make_grid_cross: need >= 1 flow");
    const Topology topo = make_grid_topology(spec.cols, spec.rows, spec.spacing_m);
    Scenario scenario = instantiate(topo, grid_config(spec, seed));

    const auto node_at = [&spec](int row, int col) { return row * spec.cols + col; };
    const int horizontal = (spec.cross_flows + 1) / 2;
    const int vertical = spec.cross_flows / 2;
    for (int i = 0; i < spec.cross_flows; ++i) {
        std::vector<NodeId> path;
        if (i % 2 == 0) {
            const int j = i / 2;
            const int row = spread_index(j, horizontal, spec.rows);
            for (int c = 0; c < spec.cols; ++c) path.push_back(node_at(row, c));
        } else {
            const int j = i / 2;
            const int col = spread_index(j, vertical, spec.cols);
            for (int r = 0; r < spec.rows; ++r) path.push_back(node_at(r, col));
        }
        // Alternate direction within each orientation so sources sit on
        // all four sides of the lattice.
        if ((i / 2) % 2 == 1) std::reverse(path.begin(), path.end());
        add_planned_flow(scenario, i + 1, std::move(path), spec.start_s, spec.duration_s);
    }
    return scenario;
}

Scenario make_grid_convergecast(const GridSpec& spec, std::uint64_t seed)
{
    if (spec.cols < 2 || spec.rows < 2)
        throw std::invalid_argument("make_grid_convergecast: need at least a 2x2 grid");
    const Topology topo = make_grid_topology(spec.cols, spec.rows, spec.spacing_m);

    const std::vector<NodeId> rim = convergecast_rim(spec.cols, spec.rows);
    if (spec.sources < 1 || spec.sources > static_cast<int>(rim.size()))
        throw std::invalid_argument("make_grid_convergecast: bad source count");

    Scenario scenario = instantiate(topo, grid_config(spec, seed));
    for (int i = 0; i < spec.sources; ++i) {
        std::vector<NodeId> path = shortest_path(topo, rim[static_cast<std::size_t>(i)], 0);
        add_planned_flow(scenario, i + 1, std::move(path), spec.start_s, spec.duration_s);
    }
    return scenario;
}

Scenario make_parking_lot_chain(int hops, int flows, double start_s, double duration_s,
                                std::uint64_t seed)
{
    if (hops < 1) throw std::invalid_argument("make_parking_lot_chain: need at least 1 hop");
    if (flows < 1 || flows > hops)
        throw std::invalid_argument("make_parking_lot_chain: need 1 <= flows <= hops");
    const Topology topo = make_grid_topology(hops + 1, 1, 200.0);
    Scenario scenario = instantiate(topo, default_config(seed));
    for (int i = 0; i < flows; ++i) {
        // Flow 1 spans the chain; later flows enter at evenly spread
        // relays, all draining toward the gateway at the far end.
        const int entry = (i * hops) / flows;
        std::vector<NodeId> path;
        for (int n = entry; n <= hops; ++n) path.push_back(n);
        add_planned_flow(scenario, i + 1, std::move(path), start_s, duration_s);
    }
    return scenario;
}

Scenario make_random_mesh(const MeshSpec& spec, std::uint64_t seed)
{
    if (spec.nodes < 2) throw std::invalid_argument("make_random_mesh: need >= 2 nodes");
    if (spec.flows < 1) throw std::invalid_argument("make_random_mesh: need >= 1 flow");
    const std::uint64_t topo_seed = spec.topo_seed != 0 ? spec.topo_seed : seed;
    Network::Config config = default_config(seed);
    config.max_shards = spec.max_shards;
    const Topology topo = make_random_topology(spec.nodes, spec.width_m, spec.height_m,
                                               config.phy.tx_range_m, topo_seed);
    Scenario scenario = instantiate(topo, config);

    // Flow endpoints come from the layout seed, not the run seed, so a
    // pinned topo_seed keeps the whole workload fixed across a seed sweep.
    util::Rng rng(topo_seed ^ 0xF10'35EEDULL);
    int placed = 0;
    // Prefer multi-hop (>= 2 hops) flows; settle for single-hop pairs
    // only when the scatter offers nothing longer.
    for (int min_hops = 2; min_hops >= 1 && placed < spec.flows; --min_hops) {
        const int budget = 64 * (spec.flows - placed);
        for (int attempt = 0; attempt < budget && placed < spec.flows; ++attempt) {
            const NodeId src = rng.uniform_int(0, spec.nodes - 1);
            const NodeId dst = rng.uniform_int(0, spec.nodes - 1);
            if (src == dst) continue;
            std::vector<NodeId> path = shortest_path(topo, src, dst);
            if (static_cast<int>(path.size()) < min_hops + 1) continue;
            add_planned_flow(scenario, ++placed, std::move(path), spec.start_s, spec.duration_s);
        }
    }
    if (placed < spec.flows)
        throw std::runtime_error("make_random_mesh: could not place the requested flows");
    return scenario;
}

Scenario make_islands(const IslandsSpec& spec, std::uint64_t seed)
{
    if (spec.islands < 1) throw std::invalid_argument("make_islands: need >= 1 island");
    if (spec.cols < 2 || spec.rows < 2)
        throw std::invalid_argument("make_islands: need at least 2x2 islands");
    Network::Config config = default_config(seed);
    config.max_shards = spec.max_shards;
    const double conflict_radius =
        std::max(config.phy.tx_range_m,
                 std::max(config.phy.cs_range_m, config.phy.interference_range_m));
    if (spec.gap_m <= conflict_radius)
        throw std::invalid_argument(
            "make_islands: gap must exceed the radio conflict radius (islands would merge)");

    // One island's local plan, replicated at increasing x offsets.
    const Topology island = make_grid_topology(spec.cols, spec.rows, spec.spacing_m);
    const std::vector<NodeId> rim = convergecast_rim(spec.cols, spec.rows);
    if (spec.sources < 1 || spec.sources > static_cast<int>(rim.size()))
        throw std::invalid_argument("make_islands: bad source count");
    const int per_island = island.node_count();
    const double island_width = (spec.cols - 1) * spec.spacing_m;

    Topology topo;
    topo.positions.reserve(static_cast<std::size_t>(per_island) *
                           static_cast<std::size_t>(spec.islands));
    for (int k = 0; k < spec.islands; ++k) {
        const double offset = k * (island_width + spec.gap_m);
        for (const phy::Position& p : island.positions)
            topo.positions.push_back(phy::Position{p.x + offset, p.y});
    }
    rebuild_links(topo);  // gap > link range: no cross-island links

    Scenario scenario = instantiate(topo, std::move(config));
    for (int k = 0; k < spec.islands; ++k) {
        const NodeId base = k * per_island;
        for (int i = 0; i < spec.sources; ++i) {
            std::vector<NodeId> path =
                shortest_path(island, rim[static_cast<std::size_t>(i)], 0);
            for (NodeId& n : path) n += base;
            add_planned_flow(scenario, k * spec.sources + i + 1, std::move(path), spec.start_s,
                             spec.duration_s);
        }
    }
    return scenario;
}

Scenario make_cluster_grid(const ClustersSpec& spec, std::uint64_t seed)
{
    if (spec.clusters < 1) throw std::invalid_argument("make_cluster_grid: need >= 1 cluster");
    if (spec.cols < 2 || spec.rows < 2)
        throw std::invalid_argument("make_cluster_grid: need at least 2x2 clusters");
    Network::Config config = default_config(seed);
    if (spec.tx_range_m > 0) config.phy.tx_range_m = spec.tx_range_m;
    if (spec.cs_range_m > 0) config.phy.cs_range_m = spec.cs_range_m;
    if (spec.interference_range_m > 0)
        config.phy.interference_range_m = spec.interference_range_m;
    if (spec.capture_threshold > 0) {
        config.phy.capture_threshold = spec.capture_threshold;
        config.phy.capture_threshold_db = 10.0 * std::log10(spec.capture_threshold);
    }
    config.max_shards = spec.max_shards;
    // The gap must open an interference-only band: beyond sense/delivery
    // (no hard coupling, so the planner may cut it) but within
    // interference range (otherwise the clusters are plain islands and
    // the connected-cut machinery is never exercised).
    const double radius_hard = std::max(config.phy.tx_range_m, config.phy.cs_range_m);
    if (spec.gap_m <= radius_hard)
        throw std::invalid_argument(
            "make_cluster_grid: gap must exceed the sense/delivery radius (clusters would "
            "hard-couple into one shard unit)");
    if (spec.gap_m > config.phy.interference_range_m)
        throw std::invalid_argument(
            "make_cluster_grid: gap exceeds the interference range (use make_islands for "
            "fully disconnected grids)");

    const Topology cluster = make_grid_topology(spec.cols, spec.rows, spec.spacing_m);
    const std::vector<NodeId> rim = convergecast_rim(spec.cols, spec.rows);
    if (spec.sources < 1 || spec.sources > static_cast<int>(rim.size()))
        throw std::invalid_argument("make_cluster_grid: bad source count");
    const int per_cluster = cluster.node_count();
    const double cluster_width = (spec.cols - 1) * spec.spacing_m;

    Topology topo;
    topo.positions.reserve(static_cast<std::size_t>(per_cluster) *
                           static_cast<std::size_t>(spec.clusters));
    for (int k = 0; k < spec.clusters; ++k) {
        const double offset = k * (cluster_width + spec.gap_m);
        for (const phy::Position& p : cluster.positions)
            topo.positions.push_back(phy::Position{p.x + offset, p.y});
    }
    topo.link_range_m = config.phy.tx_range_m;
    rebuild_links(topo);  // gap > link range: no cross-cluster links

    Scenario scenario = instantiate(topo, std::move(config));
    for (int k = 0; k < spec.clusters; ++k) {
        const NodeId base = k * per_cluster;
        for (int i = 0; i < spec.sources; ++i) {
            std::vector<NodeId> path =
                shortest_path(cluster, rim[static_cast<std::size_t>(i)], 0);
            for (NodeId& n : path) n += base;
            add_planned_flow(scenario, k * spec.sources + i + 1, std::move(path), spec.start_s,
                             spec.duration_s);
        }
    }
    return scenario;
}

}  // namespace ezflow::net

#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/units.h"

namespace ezflow::net {

/// What a single scheduled fault does to the network.
enum class FaultKind {
    kNodeDown,  ///< graceful teardown: MAC quiesced, queues flushed, PHY detached
    kNodeUp,    ///< revival: PHY reattached, MAC revived, routes repaired
    kLinkDown,  ///< administrative removal of the undirected link (a, b)
    kLinkUp,    ///< the link is usable again
};

struct FaultEvent {
    util::SimTime at = 0;  ///< absolute simulation time
    FaultKind kind = FaultKind::kNodeDown;
    NodeId node = -1;  ///< node events; ignored for link events
    NodeId a = -1;     ///< link endpoint (undirected)
    NodeId b = -1;     ///< link endpoint (undirected)
};

/// Parameters for the seeded random-churn generator: `cycles` down/up
/// cycles drawn over [from_s, to_s), victims drawn uniformly from
/// `candidates`, each outage lasting uniformly [min_down_s, max_down_s].
struct ChurnSpec {
    std::vector<NodeId> candidates;
    int cycles = 4;
    double from_s = 0.0;
    double to_s = 0.0;
    double min_down_s = 1.0;
    double max_down_s = 5.0;
};

/// A deterministic, declarative schedule of element failures and
/// revivals. Plans are plain data: build one (by hand or from
/// random_churn), hang it on a Scenario, and sim::FaultInjector executes
/// it against the live network. Seconds in, SimTime out — callers think
/// in scenario time.
struct FaultPlan {
    std::vector<FaultEvent> events;

    FaultPlan& node_down(double at_s, NodeId node);
    FaultPlan& node_up(double at_s, NodeId node);
    FaultPlan& link_down(double at_s, NodeId a, NodeId b);
    FaultPlan& link_up(double at_s, NodeId a, NodeId b);

    bool empty() const { return events.empty(); }

    /// Events ordered by (time, insertion order) — the execution order
    /// the injector uses, independent of how the plan was authored.
    std::vector<FaultEvent> sorted() const;

    /// Seeded random churn: same spec + same seed -> same plan, on any
    /// platform (uses the repo's deterministic SplitMix/Xoshiro RNG).
    /// Down and up events are paired and never overlap for one node.
    static FaultPlan random_churn(const ChurnSpec& spec, std::uint64_t seed);
};

}  // namespace ezflow::net

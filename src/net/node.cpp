#include "net/node.h"

#include <stdexcept>
#include <utility>

namespace ezflow::net {

Node::Node(NodeId id, phy::Position position, sim::Scheduler& scheduler,
           mac::ContentionCoordinator& coordinator, util::Rng rng, const mac::MacParams& mac_params,
           const RoutingTable& routing)
    : id_(id),
      phy_(id, position, scheduler),
      mac_(phy_, scheduler, coordinator, std::move(rng), mac_params),
      routing_(routing)
{
    mac_.set_callbacks(this);
}

void Node::set_forward_interceptor(ForwardInterceptor interceptor)
{
    if (interceptor_ && interceptor)
        throw std::logic_error("Node::set_forward_interceptor: already installed");
    interceptor_ = std::move(interceptor);
}

bool Node::send(Packet packet)
{
    if (!up_) {
        ++drops_node_down_;
        return false;
    }
    const NodeId next = routing_.next_hop_or_none(packet.flow_id, id_);
    if (next == RoutingTable::kNoNextHop) {
        // Suspended (partitioned) flow, or repair in flight. Sources
        // check routability before generating, so this is the rare race
        // window between a repair and an already-scheduled emission.
        ++drops_unroutable_;
        return false;
    }
    const mac::QueueKey key{next, /*own_traffic=*/true};
    if (interceptor_ && interceptor_(key, packet)) return true;
    const bool accepted = mac_.enqueue(key, std::move(packet));
    if (!accepted) ++source_queue_drops_;
    return accepted;
}

mac::MacQueue* Node::own_traffic_queue(int flow_id)
{
    const NodeId next = routing_.next_hop_or_none(flow_id, id_);
    if (next == RoutingTable::kNoNextHop) return nullptr;
    return mac_.queues().find(mac::QueueKey{next, /*own_traffic=*/true});
}

void Node::teardown()
{
    if (!up_) return;
    up_ = false;
    // Order matters: the MAC must be quiet before the radio dies so the
    // PHY wipe never triggers busy-edge callbacks into a live state
    // machine, and queue flushes (which may wake gated sources) already
    // see the node as down.
    mac_.quiesce();
    phy_.power_off();
}

void Node::revive()
{
    if (up_) return;
    up_ = true;
    phy_.power_on();
    mac_.revive();
}

void Node::mac_rx(const phy::Frame& frame)
{
    if (!frame.has_packet) throw std::logic_error("Node::mac_rx: data frame without packet");
    const Packet& packet = frame.packet;
    if (packet.dst == id_) {
        ++delivered_;
        for (const auto& handler : delivery_) handler(packet);
        return;
    }
    const NodeId next = routing_.next_hop_or_none(packet.flow_id, id_);
    if (next == RoutingTable::kNoNextHop) {
        // The flow was suspended or re-routed around this node while the
        // packet was in flight: it dies here, accounted.
        ++drops_unroutable_;
        return;
    }
    ++forwarded_;
    const mac::QueueKey key{next, /*own_traffic=*/false};
    if (interceptor_ && interceptor_(key, packet)) return;
    if (!mac_.enqueue(key, packet)) ++forward_queue_drops_;
}

void Node::mac_sniffed(const phy::Frame& frame)
{
    for (const auto& handler : sniffers_) handler(frame);
}

void Node::mac_first_tx(const mac::QueueKey& key, const Packet& packet)
{
    for (const auto& handler : first_tx_) handler(key, packet);
}

void Node::mac_tx_success(const mac::QueueKey& key, const Packet& packet)
{
    for (const auto& handler : tx_success_) handler(key, packet);
}

void Node::mac_tx_drop(const mac::QueueKey& key, const Packet& packet)
{
    (void)key;
    (void)packet;
}

}  // namespace ezflow::net

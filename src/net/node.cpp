#include "net/node.h"

#include <stdexcept>
#include <utility>

namespace ezflow::net {

Node::Node(NodeId id, phy::Position position, sim::Scheduler& scheduler,
           mac::ContentionCoordinator& coordinator, util::Rng rng, const mac::MacParams& mac_params,
           const RoutingTable& routing)
    : id_(id),
      phy_(id, position, scheduler),
      mac_(phy_, scheduler, coordinator, std::move(rng), mac_params),
      routing_(routing)
{
    mac_.set_callbacks(this);
}

void Node::set_forward_interceptor(ForwardInterceptor interceptor)
{
    if (interceptor_ && interceptor)
        throw std::logic_error("Node::set_forward_interceptor: already installed");
    interceptor_ = std::move(interceptor);
}

bool Node::send(Packet packet)
{
    if (!up_) {
        ++drops_node_down_;
        return false;
    }
    const NodeId next = routing_.next_hop_or_none(packet.flow_id, id_);
    if (next == RoutingTable::kNoNextHop) {
        // Suspended (partitioned) flow, or repair in flight. Sources
        // check routability before generating, so this is the rare race
        // window between a repair and an already-scheduled emission.
        ++drops_unroutable_;
        return false;
    }
    const mac::QueueKey key{next, /*own_traffic=*/true};
    if (interceptor_ && interceptor_(key, packet)) return true;
    const bool accepted = mac_.enqueue(key, std::move(packet));
    if (!accepted) ++source_queue_drops_;
    return accepted;
}

mac::MacQueue* Node::own_traffic_queue(int flow_id)
{
    const NodeId next = routing_.next_hop_or_none(flow_id, id_);
    if (next == RoutingTable::kNoNextHop) return nullptr;
    return mac_.queues().find(mac::QueueKey{next, /*own_traffic=*/true});
}

void Node::teardown()
{
    if (!up_) return;
    up_ = false;
    // Order matters: the MAC must be quiet before the radio dies so the
    // PHY wipe never triggers busy-edge callbacks into a live state
    // machine, and queue flushes (which may wake gated sources) already
    // see the node as down.
    mac_.quiesce();
    phy_.power_off();
    // Reorder-parked MPDUs die with the node: they were received but
    // never released upward, so they leave the system through the same
    // node-down bucket as flushed queue backlog.
    for (auto& [src, stream] : reorder_) drops_node_down_ += stream.held.size();
    reorder_.clear();
}

void Node::revive()
{
    if (up_) return;
    up_ = true;
    phy_.power_on();
    mac_.revive();
}

void Node::handle_packet(const Packet& packet)
{
    if (packet.dst == id_) {
        ++delivered_;
        for (const auto& handler : delivery_) handler(packet);
        return;
    }
    const NodeId next = routing_.next_hop_or_none(packet.flow_id, id_);
    if (next == RoutingTable::kNoNextHop) {
        // The flow was suspended or re-routed around this node while the
        // packet was in flight: it dies here, accounted.
        ++drops_unroutable_;
        return;
    }
    ++forwarded_;
    const mac::QueueKey key{next, /*own_traffic=*/false};
    if (interceptor_ && interceptor_(key, packet)) return;
    if (!mac_.enqueue(key, packet)) ++forward_queue_drops_;
}

void Node::mac_rx(const phy::Frame& frame)
{
    if (!frame.has_packet) throw std::logic_error("Node::mac_rx: data frame without packet");
    handle_packet(frame.packet);
}

void Node::mac_rx_aggregated(const phy::Frame& frame, std::uint64_t ok_bits,
                             std::uint32_t release_below)
{
    ReorderStream& stream = reorder_[frame.tx_node];
    // Park the newly received MPDUs (the MAC's scoreboard already
    // filtered duplicates, so each sequence lands here at most once).
    for (std::size_t i = 0; i < frame.subframes.size() && i < 64; ++i) {
        if (((ok_bits >> i) & 1) == 0) continue;
        const phy::Mpdu& mpdu = frame.subframes[i];
        if (mpdu.seq < stream.next_seq) continue;  // defensive: already released
        stream.held.emplace(mpdu.seq, mpdu.packet);
    }
    // BAR-free window advance: the sender's advertised start proves every
    // lower sequence is settled there (acked or abandoned), so release
    // what we hold below it — in order — and skip the holes for good.
    if (release_below > stream.next_seq) {
        const auto end = stream.held.lower_bound(release_below);
        for (auto it = stream.held.begin(); it != end; ++it) handle_packet(it->second);
        stream.held.erase(stream.held.begin(), end);
        stream.next_seq = release_below;
    }
    // Drain the contiguous in-order run from the buffer.
    for (auto it = stream.held.find(stream.next_seq); it != stream.held.end();
         it = stream.held.find(stream.next_seq)) {
        handle_packet(it->second);
        stream.held.erase(it);
        ++stream.next_seq;
    }
}

std::uint64_t Node::reorder_buffered() const
{
    std::uint64_t total = 0;
    for (const auto& [src, stream] : reorder_) total += stream.held.size();
    return total;
}

void Node::mac_sniffed(const phy::Frame& frame)
{
    for (const auto& handler : sniffers_) handler(frame);
}

void Node::mac_first_tx(const mac::QueueKey& key, const Packet& packet)
{
    for (const auto& handler : first_tx_) handler(key, packet);
}

void Node::mac_tx_success(const mac::QueueKey& key, const Packet& packet)
{
    for (const auto& handler : tx_success_) handler(key, packet);
}

void Node::mac_tx_drop(const mac::QueueKey& key, const Packet& packet)
{
    (void)key;
    (void)packet;
}

}  // namespace ezflow::net

#pragma once

#include <cstdint>
#include <vector>

#include "net/topologies.h"

namespace ezflow::net {

/// Pure link-graph view of a planned deployment: node positions plus the
/// undirected delivery-range adjacency, computable before (and without)
/// building a Network. The generators below plan on a Topology — flow
/// routing is shortest-path over these links — and only then instantiate
/// nodes and flows, so the planning layer is cheap enough to reject and
/// retry whole layouts (random meshes) and to cross-check in tests.
struct Topology {
    std::vector<phy::Position> positions;
    /// Two nodes are linked when within this range (the PHY delivery
    /// range; consecutive flow hops must respect it).
    double link_range_m = 250.0;
    /// Per-node sorted neighbour lists under link_range_m.
    std::vector<std::vector<NodeId>> neighbours;

    int node_count() const { return static_cast<int>(positions.size()); }
    bool has_link(NodeId a, NodeId b) const;
};

/// Rebuild the adjacency lists from positions and link_range_m.
void rebuild_links(Topology& topo);

/// cols x rows lattice at `spacing_m`; node id = row * cols + col
/// (row-major). With 200 m spacing under the default ns-2 ranges,
/// axis-aligned neighbours are 1-hop links and diagonals (283 m) are not.
Topology make_grid_topology(int cols, int rows, double spacing_m);

/// `nodes` positions drawn uniformly over [0,width] x [0,height] from the
/// seed, resampled (deterministically) until the delivery graph is
/// connected. Throws std::runtime_error when no connected layout is found
/// within the attempt budget (area too large for the node count).
Topology make_random_topology(int nodes, double width_m, double height_m, double link_range_m,
                              std::uint64_t seed);

/// Whether every node can reach every other over delivery-range links.
bool is_connected(const Topology& topo);

/// A shortest src -> dst path over the delivery links (BFS hop metric),
/// deterministic under ties: among equal-length options it follows the
/// smallest-id neighbour at every step. Empty when unreachable or
/// src == dst.
std::vector<NodeId> shortest_path(const Topology& topo, NodeId src, NodeId dst);

/// Parameters shared by the grid scenario builders. Ranges <= 0 keep the
/// defaults of default_config (250 m delivery / 550 m carrier sense and
/// interference, the ns-2 regime of the paper's simulations).
struct GridSpec {
    int cols = 5;
    int rows = 5;
    double spacing_m = 200.0;
    double tx_range_m = 0.0;
    double cs_range_m = 0.0;
    double interference_range_m = 0.0;
    /// make_grid_cross: straight row/column flows, alternating horizontal
    /// and vertical, spread across the lattice (the Chan/Liew/Chan
    /// arXiv:0704.0528 cross-traffic workload).
    int cross_flows = 4;
    /// make_grid_convergecast: edge sources routed to the gateway.
    int sources = 4;
    double start_s = 5.0;
    double duration_s = 60.0;
    /// Upper bound for the shard planner (plan_shards). A connected grid
    /// always collapses to one shard; the bound only matters for
    /// disconnected layouts.
    int max_shards = 1;
};

/// Cross-traffic grid: flow i (ids 1..cross_flows) runs straight along a
/// row (even i-1) or column (odd i-1), rows/columns spread evenly,
/// direction alternating per flow so sources sit on all four sides.
Scenario make_grid_cross(const GridSpec& spec, std::uint64_t seed);

/// Convergecast grid: `sources` nodes spread along the far row and far
/// column all route (shortest-path) to the gateway at node 0 — the
/// backhaul pattern of mesh access networks (flow ids 1..sources).
Scenario make_grid_convergecast(const GridSpec& spec, std::uint64_t seed);

/// Parking-lot chain of arbitrary length: a `hops`-hop chain whose flow 1
/// spans the whole chain and flows 2..flows enter at evenly spread
/// intermediate nodes, all toward the gateway at the far end (the Leith
/// et al. arXiv:1002.1581 max-min workload family). All flows are active
/// over [start_s, start_s + duration_s). Requires 1 <= flows <= hops.
Scenario make_parking_lot_chain(int hops, int flows, double start_s, double duration_s,
                                std::uint64_t seed);

/// Parameters for seeded random-mesh scenarios.
struct MeshSpec {
    int nodes = 24;
    int flows = 4;
    double width_m = 1400.0;
    double height_m = 1400.0;
    /// Layout seed; 0 derives it from the run seed, so every seed of a
    /// sweep exercises a different (but reproducible) mesh.
    std::uint64_t topo_seed = 0;
    double start_s = 5.0;
    double duration_s = 60.0;
    /// Upper bound for the shard planner (a connected mesh collapses to
    /// one shard; see GridSpec::max_shards).
    int max_shards = 1;
};

/// Seeded random mesh: a connected uniform scatter plus `flows` random
/// multi-hop flows (ids 1..flows) routed shortest-path. Deterministic in
/// (spec, seed).
Scenario make_random_mesh(const MeshSpec& spec, std::uint64_t seed);

/// Parameters for the disconnected-islands scenario: `islands` identical
/// cols x rows grids laid out along the x axis, separated by `gap_m`
/// (which must exceed the radio conflict radius so the islands are
/// provably independent — the shard planner's best case). Each island
/// runs its own convergecast: `sources` rim nodes route to the island's
/// local gateway (its lowest node id). Node ids are island-major; flow
/// ids are island-major 1..islands*sources.
struct IslandsSpec {
    int islands = 4;
    int cols = 4;
    int rows = 4;
    double spacing_m = 200.0;
    int sources = 2;
    double gap_m = 2000.0;
    double start_s = 5.0;
    double duration_s = 30.0;
    int max_shards = 1;
};

/// Disconnected islands of convergecast traffic — the space-parallel
/// benchmark topology (each island is a shard when max_shards allows).
Scenario make_islands(const IslandsSpec& spec, std::uint64_t seed);

/// Parameters for the clustered-grid scenario: `clusters` identical
/// cols x rows grids along the x axis separated by `gap_m`, chosen so the
/// inter-cluster band is *interference-only*: wider than the
/// sense/delivery radius (no cross-cluster links or carrier sensing) yet
/// within interference range (facing rim columns still corrupt each
/// other's receptions). This is the connected-cut partitioner's target
/// case — the conflict graph is one component, but every cross-cluster
/// edge is severable with ghost-signal mirroring. The capture threshold
/// is raised so a lone cross-gap interferer actually corrupts a
/// spacing_m-distance reception (two-ray 1/d^4: SIR at 600 m vs 200 m is
/// 81, below the 100 default here but above the ns-2 default of 10) —
/// without that, the mirrored ghosts would be outcome-inert. Each
/// cluster runs its own convergecast exactly like IslandsSpec; node ids
/// are cluster-major, flow ids cluster-major 1..clusters*sources.
struct ClustersSpec {
    int clusters = 4;
    int cols = 4;
    int rows = 4;
    double spacing_m = 200.0;
    int sources = 2;
    /// Must satisfy max(tx, cs) < gap_m and gap_m <= interference range.
    double gap_m = 600.0;
    /// Ranges <= 0 keep the default_config values (250/550). The
    /// interference default is widened past the gap so the cut exists.
    double tx_range_m = 0.0;
    double cs_range_m = 0.0;
    double interference_range_m = 700.0;
    /// Linear capture SIR (<= 0 keeps the ns-2 default of 10).
    double capture_threshold = 100.0;
    double start_s = 5.0;
    double duration_s = 30.0;
    int max_shards = 1;
};

/// Connected clustered grids of convergecast traffic — the connected-cut
/// benchmark topology (one shard per cluster when max_shards allows,
/// with boundary-node ghost mirroring across the interference-only gap).
Scenario make_cluster_grid(const ClustersSpec& spec, std::uint64_t seed);

}  // namespace ezflow::net

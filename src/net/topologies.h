#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/network.h"

namespace ezflow::net {

/// Description of one flow in a canned scenario.
struct FlowPlan {
    int flow_id;
    std::vector<NodeId> path;
    /// Active period in seconds (as in the paper's scenario timelines).
    double start_s;
    double stop_s;
};

/// A built scenario: the network plus the flows to drive through it.
struct Scenario {
    std::unique_ptr<Network> network;
    std::vector<FlowPlan> flows;
    /// Human-readable node labels matching the paper's figures
    /// (e.g. "N1", "N0'" on the testbed map).
    std::map<NodeId, std::string> labels;
    /// Scheduled node/link fault events (empty for the canned paper
    /// scenarios). Executed by a sim::FaultInjector when the scenario is
    /// run through analysis::Experiment.
    FaultPlan faults;
};

/// Common defaults used by all scenarios: ns-2 ranges (250 m delivery,
/// 550 m carrier sense), 200 m hop spacing, 802.11b at 1 Mb/s, buffer of
/// 50 packets, RTS/CTS off.
Network::Config default_config(std::uint64_t seed);

/// Same, but with carrier sense reduced to the delivery range (250 m):
/// the testbed regime, where 2-hop-apart routers across buildings are too
/// attenuated to trigger carrier sense, making them mutually hidden. This
/// is the geometry under which [9] proves (and Fig. 1 measures) "3-hop
/// stable, 4-hop unstable": the source collides with the 2-hop relay
/// (penalizing it) while 3-hop-apart nodes enjoy clean spatial reuse that
/// floods the first relay. Interference still carries to 550 m.
Network::Config testbed_config(std::uint64_t seed);

/// A linear K-hop chain (K+1 nodes), the Fig. 1 topology family. One flow
/// (id 0) from node 0 to node K, active for `duration_s` from t = 5 s.
Scenario make_line(int hops, double duration_s, std::uint64_t seed);

/// The 9-router testbed of Fig. 3: a 7-hop flow F1 (N0 -> ... -> N7) and a
/// 4-hop flow F2 (N0' joining at N4, sharing links l4..l6) forming a
/// parking-lot. Per-link loss rates are calibrated so the single-link
/// capacities reproduce Table 1 (l2 is the bottleneck at ~408 kb/s).
/// Flow ids: F1 = 1, F2 = 2. Activity windows are set by the caller.
Scenario make_testbed(double f1_start_s, double f1_stop_s, double f2_start_s, double f2_stop_s,
                      std::uint64_t seed);

/// Per-link loss rates used by make_testbed, exposed for the Table 1
/// calibration bench: element i is the loss of link l_i = N_i -> N_{i+1}
/// along F1's path.
const std::vector<double>& testbed_link_loss();

/// Scenario 1 (Fig. 5): two 8-hop flows merging at N4 toward gateway N0.
/// F1: N12 -> N10 -> N8 -> N6 -> N4 -> N3 -> N2 -> N1 -> N0 (id 1)
/// F2: N11 -> N9 -> N7 -> N5 -> N4 -> N3 -> N2 -> N1 -> N0 (id 2)
/// F1 active [5, 2504] s; F2 active [605, 1804] s (the paper's timeline,
/// scaled by `time_scale` for faster test runs).
Scenario make_scenario1(double time_scale, std::uint64_t seed);

/// Scenario 2 (Fig. 9): three flows sharing parts of a 28-node layout,
/// with hidden sources. Flow ids 1..3; timeline [5,1805), [1805,3605),
/// [3605,4500) scaled by `time_scale`.
Scenario make_scenario2(double time_scale, std::uint64_t seed);

}  // namespace ezflow::net

#include "net/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace ezflow::net {

FaultPlan& FaultPlan::node_down(double at_s, NodeId node)
{
    FaultEvent e;
    e.at = util::from_seconds(at_s);
    e.kind = FaultKind::kNodeDown;
    e.node = node;
    events.push_back(e);
    return *this;
}

FaultPlan& FaultPlan::node_up(double at_s, NodeId node)
{
    FaultEvent e;
    e.at = util::from_seconds(at_s);
    e.kind = FaultKind::kNodeUp;
    e.node = node;
    events.push_back(e);
    return *this;
}

FaultPlan& FaultPlan::link_down(double at_s, NodeId a, NodeId b)
{
    FaultEvent e;
    e.at = util::from_seconds(at_s);
    e.kind = FaultKind::kLinkDown;
    e.a = a;
    e.b = b;
    events.push_back(e);
    return *this;
}

FaultPlan& FaultPlan::link_up(double at_s, NodeId a, NodeId b)
{
    FaultEvent e;
    e.at = util::from_seconds(at_s);
    e.kind = FaultKind::kLinkUp;
    e.a = a;
    e.b = b;
    events.push_back(e);
    return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const
{
    std::vector<FaultEvent> out = events;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
    return out;
}

FaultPlan FaultPlan::random_churn(const ChurnSpec& spec, std::uint64_t seed)
{
    if (spec.candidates.empty())
        throw std::invalid_argument("FaultPlan::random_churn: no candidate nodes");
    if (spec.cycles < 0) throw std::invalid_argument("FaultPlan::random_churn: cycles < 0");
    if (!(spec.from_s <= spec.to_s))
        throw std::invalid_argument("FaultPlan::random_churn: from_s > to_s");
    if (!(0.0 < spec.min_down_s && spec.min_down_s <= spec.max_down_s))
        throw std::invalid_argument("FaultPlan::random_churn: bad outage duration range");

    util::Rng rng(seed);
    FaultPlan plan;
    // Track when each victim comes back so one node's cycles never
    // overlap (a second kNodeDown while already down would be a no-op,
    // but the paired kNodeUp events would then race each other).
    std::vector<double> busy_until(spec.candidates.size(), spec.from_s);
    for (int c = 0; c < spec.cycles; ++c) {
        const int pick =
            rng.uniform_int(0, static_cast<int>(spec.candidates.size()) - 1);
        const double down_for = rng.uniform_real(spec.min_down_s, spec.max_down_s);
        const double earliest = busy_until[static_cast<std::size_t>(pick)];
        if (earliest + down_for > spec.to_s) continue;  // no room left for this victim
        const double at = rng.uniform_real(earliest, spec.to_s - down_for);
        plan.node_down(at, spec.candidates[static_cast<std::size_t>(pick)]);
        plan.node_up(at + down_for, spec.candidates[static_cast<std::size_t>(pick)]);
        busy_until[static_cast<std::size_t>(pick)] = at + down_for;
    }
    return plan;
}

}  // namespace ezflow::net

#include "net/topologies.h"

#include <cmath>
#include <stdexcept>

namespace ezflow::net {

namespace {

/// Hop spacing used by all scenarios: adjacent nodes are 1-hop neighbours
/// (200 < 250 m), 2-hop neighbours carrier-sense each other (400 < 550 m),
/// and 3-hop neighbours are hidden (600 > 550 m) — the ns-2 regime the
/// paper simulates and the one [9] proves unstable beyond 3 hops.
constexpr double kSpacing = 200.0;

using util::kPi;

}  // namespace

Network::Config default_config(std::uint64_t seed)
{
    Network::Config config;
    config.seed = seed;
    // phy and mac defaults already encode the paper's setup (see
    // PhyParams/MacParams); nothing to override here.
    return config;
}

Network::Config testbed_config(std::uint64_t seed)
{
    Network::Config config = default_config(seed);
    config.phy.cs_range_m = config.phy.tx_range_m;  // 1-hop carrier sensing
    return config;
}

Scenario make_line(int hops, double duration_s, std::uint64_t seed)
{
    if (hops < 1) throw std::invalid_argument("make_line: need at least 1 hop");
    Scenario scenario;
    scenario.network = std::make_unique<Network>(testbed_config(seed));
    Network& net = *scenario.network;
    std::vector<NodeId> path;
    for (int i = 0; i <= hops; ++i) {
        const NodeId id = net.add_node({kSpacing * i, 0.0});
        path.push_back(id);
        scenario.labels[id] = "N" + std::to_string(i);
    }
    net.add_flow(0, path);
    scenario.flows.push_back(FlowPlan{0, path, 5.0, 5.0 + duration_s});
    return scenario;
}

const std::vector<double>& testbed_link_loss()
{
    // Calibrated so single-link saturation throughput reproduces Table 1:
    // l0..l6 = 845, 672, 408, 748, 746, 805, 648 kb/s, with l2 = N2->N3
    // the bottleneck. Loss applies to the data direction of each link.
    static const std::vector<double> kLoss = {0.02, 0.20, 0.47, 0.12, 0.12, 0.06, 0.23};
    return kLoss;
}

Scenario make_testbed(double f1_start_s, double f1_stop_s, double f2_start_s, double f2_stop_s,
                      std::uint64_t seed)
{
    Scenario scenario;
    scenario.network = std::make_unique<Network>(testbed_config(seed));
    Network& net = *scenario.network;

    // F1's chain N0..N7 (7 hops, links l0..l6 as in Fig. 3 / Table 1).
    std::vector<NodeId> f1_path;
    for (int i = 0; i <= 7; ++i) {
        const NodeId id = net.add_node({kSpacing * i, 0.0});
        f1_path.push_back(id);
        scenario.labels[id] = "N" + std::to_string(i);
    }
    // F2's source N0' sits beside the junction N4 (parking-lot entry).
    // Placement matters: N0' carrier-senses N3, N4 and N5 (it coordinates
    // with the exchanges around the junction instead of jamming them —
    // the routers sat in neighbouring buildings) but is hidden from N6.
    // That keeps F2 a proper 4-hop chain whose first relay N4 suffers the
    // >3-hop instability (Fig. 4: N4's buffer builds up when F2 runs
    // alone, because N0' + N6 enjoy spatial reuse while N6's hidden
    // frames corrupt N4's) with a clean source entry link.
    const NodeId n0p = net.add_node({kSpacing * 4, kSpacing * 0.75});
    scenario.labels[n0p] = "N0'";
    std::vector<NodeId> f2_path = {n0p, f1_path[4], f1_path[5], f1_path[6], f1_path[7]};

    net.add_flow(1, f1_path);
    net.add_flow(2, f2_path);
    scenario.flows.push_back(FlowPlan{1, f1_path, f1_start_s, f1_stop_s});
    scenario.flows.push_back(FlowPlan{2, f2_path, f2_start_s, f2_stop_s});

    const auto& loss = testbed_link_loss();
    for (std::size_t i = 0; i < loss.size(); ++i)
        net.channel().set_link_loss(f1_path[i], f1_path[i + 1], loss[i]);
    net.channel().set_link_loss(n0p, f1_path[4], 0.05);
    return scenario;
}

Scenario make_scenario1(double time_scale, std::uint64_t seed)
{
    if (time_scale <= 0.0) throw std::invalid_argument("make_scenario1: bad time scale");
    Scenario scenario;
    scenario.network = std::make_unique<Network>(default_config(seed));
    Network& net = *scenario.network;

    // Common trunk toward the gateway N0: N4 -> N3 -> N2 -> N1 -> N0.
    std::vector<NodeId> trunk;  // index i holds N_i for i = 0..4
    for (int i = 0; i <= 4; ++i) {
        const NodeId id = net.add_node({kSpacing * i, 0.0});
        trunk.push_back(id);
        scenario.labels[id] = "N" + std::to_string(i);
    }
    // Two branches diverge from N4 at +/-30 degrees: even-numbered nodes
    // N6, N8, N10, N12 on one, odd N5, N7, N9, N11 on the other (Fig. 5).
    const double angle = 30.0 * kPi / 180.0;
    std::vector<NodeId> branch_a;  // N6, N8, N10, N12
    std::vector<NodeId> branch_b;  // N5, N7, N9, N11
    for (int k = 1; k <= 4; ++k) {
        const double x = kSpacing * 4 + kSpacing * k * std::cos(angle);
        const double y = kSpacing * k * std::sin(angle);
        const NodeId a = net.add_node({x, y});
        branch_a.push_back(a);
        scenario.labels[a] = "N" + std::to_string(4 + 2 * k);
        const NodeId b = net.add_node({x, -y});
        branch_b.push_back(b);
        scenario.labels[b] = "N" + std::to_string(3 + 2 * k);
    }

    // F1: N12 -> N10 -> N8 -> N6 -> N4 -> N3 -> N2 -> N1 -> N0.
    std::vector<NodeId> f1_path = {branch_a[3], branch_a[2], branch_a[1], branch_a[0],
                                   trunk[4],    trunk[3],    trunk[2],    trunk[1],  trunk[0]};
    // F2: N11 -> N9 -> N7 -> N5 -> N4 -> N3 -> N2 -> N1 -> N0.
    std::vector<NodeId> f2_path = {branch_b[3], branch_b[2], branch_b[1], branch_b[0],
                                   trunk[4],    trunk[3],    trunk[2],    trunk[1],  trunk[0]};
    net.add_flow(1, f1_path);
    net.add_flow(2, f2_path);
    scenario.flows.push_back(FlowPlan{1, f1_path, 5.0 * time_scale, 2504.0 * time_scale});
    scenario.flows.push_back(FlowPlan{2, f2_path, 605.0 * time_scale, 1804.0 * time_scale});
    return scenario;
}

Scenario make_scenario2(double time_scale, std::uint64_t seed)
{
    if (time_scale <= 0.0) throw std::invalid_argument("make_scenario2: bad time scale");
    Scenario scenario;
    scenario.network = std::make_unique<Network>(default_config(seed));
    Network& net = *scenario.network;

    auto label = [&scenario](NodeId id, int n) { scenario.labels[id] = "N" + std::to_string(n); };

    // F1: an 8-hop west-east chain N0..N8.
    std::vector<NodeId> f1_path;
    for (int i = 0; i <= 8; ++i) {
        const NodeId id = net.add_node({kSpacing * i, 0.0});
        f1_path.push_back(id);
        label(id, i);
    }
    // F2: crosses F1 between N3 and N4 going north-south. Its source N10
    // is hidden from N0 (the property the paper highlights) and directly
    // competes with only two nodes, N11 and N12.
    std::vector<NodeId> f2_path;
    for (int k = 0; k < 6; ++k) {
        const NodeId id = net.add_node({700.0, 600.0 - kSpacing * k});
        f2_path.push_back(id);
        label(id, 10 + k);
    }
    // F3: crosses F1 between N6 and N7 going south-north, source N19.
    std::vector<NodeId> f3_path;
    for (int k = 0; k < 6; ++k) {
        const NodeId id = net.add_node({1300.0, -600.0 + kSpacing * k});
        f3_path.push_back(id);
        label(id, 19 + k);
    }

    net.add_flow(1, f1_path);
    net.add_flow(2, f2_path);
    net.add_flow(3, f3_path);
    scenario.flows.push_back(FlowPlan{1, f1_path, 5.0 * time_scale, 4500.0 * time_scale});
    scenario.flows.push_back(FlowPlan{2, f2_path, 5.0 * time_scale, 3605.0 * time_scale});
    scenario.flows.push_back(FlowPlan{3, f3_path, 1805.0 * time_scale, 3605.0 * time_scale});
    return scenario;
}

}  // namespace ezflow::net

// Thin launcher kept for muscle memory: the implementation now lives in
// the figure registry (src/cli/figures/) under the name "voip_mesh".
// Equivalent to `ezflow run voip_mesh`; flags --scale/--seed/--seeds/
// --threads/--csv/--out/--smoke pass through.

#include "cli/app.h"

int main(int argc, char** argv)
{
    return ezflow::cli::run_figure_main("voip_mesh", argc, argv);
}

// VoIP over the mesh backhaul: the delay-sensitive workload the paper's
// introduction motivates ("low delays is of utmost importance in cases
// where a mesh network supports real-time, multimedia services such as
// VoIP"). A 64 kb/s voice-like flow (200-byte packets) crosses the 4-hop
// backhaul while a greedy bulk flow saturates it; with plain 802.11 the
// relay buffers the bulk flow fills add seconds of queueing in front of
// every voice packet, with EZ-Flow the voice delay distribution collapses.
//
//   ./example_voip_mesh [--duration=400] [--seed=7]

#include <cstdio>
#include <vector>

#include "core/agent.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"
#include "util/cli.h"
#include "util/stats.h"

using namespace ezflow;

namespace {

void run(bool ezflow, double duration_s, std::uint64_t seed)
{
    net::Scenario scenario = net::make_line(4, duration_s, seed);
    net::Network& network = *scenario.network;
    // Voice flow shares the same path (flow id 1).
    network.add_flow(1, scenario.flows[0].path);

    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents;
    if (ezflow) agents = core::install_ezflow(network, core::CaaConfig{});

    traffic::Sink sink(network);
    sink.attach_flow(0);
    sink.attach_flow(1);
    traffic::CbrSource bulk(network, 0, 1000, 2e6);  // greedy background
    bulk.activate(util::from_seconds(5), util::from_seconds(duration_s));
    traffic::CbrSource voice(network, 1, 200, 64'000.0);  // 40 pkt/s voice
    voice.activate(util::from_seconds(5), util::from_seconds(duration_s));

    network.run_until(util::from_seconds(duration_s));

    const auto& record = sink.flow(1);
    std::vector<double> delays_ms;
    const double from = 0.3 * duration_s;
    const auto& times = record.delay_series.times();
    const auto& values = record.delay_series.values();
    for (std::size_t i = 0; i < times.size(); ++i)
        if (util::to_seconds(times[i]) >= from) delays_ms.push_back(values[i] / 1000.0);

    std::printf("%-8s voice delivered %5llu pkts | delay p50 %7.1f ms  p95 %7.1f ms  p99 %7.1f ms\n",
                ezflow ? "EZ-flow" : "802.11",
                static_cast<unsigned long long>(record.packets),
                delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 50),
                delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 95),
                delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 99));
}

}  // namespace

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double duration_s = cli.get_double("duration", 400.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

    std::printf("64 kb/s voice flow sharing a 4-hop backhaul with a greedy bulk flow:\n\n");
    run(false, duration_s, seed);
    run(true, duration_s, seed);
    std::printf(
        "\nThe voice packets queue behind the bulk flow's backlog at every relay;\n"
        "EZ-flow keeps those buffers drained, so tail latency drops by an order\n"
        "of magnitude — without any priority mechanism or signalling.\n");
    return 0;
}

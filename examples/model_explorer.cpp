// Model explorer: drive the Section 6 slotted random-walk model directly.
// Useful to study the stability boundary without packet-level simulation:
// choose the chain length, toggle EZ-Flow's Eq. (2) dynamics, and print
// the backlog trajectory plus the per-region empirical drift of the
// Lyapunov function h(b) = sum b_i.
//
//   ./example_model_explorer [--hops=4] [--slots=200000] [--ezflow=true]
//                            [--cw=32] [--seed=7]

#include <cstdio>
#include <map>

#include "model/lyapunov.h"
#include "model/region.h"
#include "model/walk.h"
#include "util/cli.h"

using namespace ezflow;

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const int hops = cli.get_int("hops", 4);
    const auto slots = static_cast<std::uint64_t>(cli.get_int("slots", 200000));
    const bool ezflow = cli.get_bool("ezflow", true);
    const long long fixed_cw = cli.get_int("cw", 32);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

    model::RandomWalkModel::Config config;
    config.hops = hops;
    config.ezflow_enabled = ezflow;
    if (!ezflow)
        config.initial_cw.assign(static_cast<std::size_t>(hops), fixed_cw);

    model::RandomWalkModel walk(config, util::Rng(seed));
    std::map<int, std::uint64_t> region_time;

    std::printf("%d-hop slotted model, %s:\n", hops,
                ezflow ? "EZ-flow dynamics (Eq. 2)" : "fixed windows");
    std::printf("%10s  %10s  %10s\n", "slot", "h(b)", "delivered");
    for (int decile = 1; decile <= 10; ++decile) {
        for (std::uint64_t i = 0; i < slots / 10; ++i) {
            walk.step();
            ++region_time[walk.region()];
        }
        std::printf("%10llu  %10lld  %10llu\n",
                    static_cast<unsigned long long>(walk.slots()), walk.total_backlog(),
                    static_cast<unsigned long long>(walk.delivered()));
    }

    std::printf("\ntime share per region (non-empty relay bitmask):\n");
    for (const auto& [region, count] : region_time) {
        std::printf("  %-6s %5.1f%%\n", model::region_name(region, hops - 1).c_str(),
                    100.0 * static_cast<double>(count) / static_cast<double>(walk.slots()));
    }
    std::printf(
        "\nWith --ezflow=false the backlog h(b) grows roughly linearly for hops >= 4\n"
        "(the instability of [9]); with EZ-flow it stays within tens of packets\n"
        "(Theorem 1).\n");
    return 0;
}

// Parking-lot scenario on the Fig. 3 testbed: a long 7-hop flow F1 shares
// its tail with a short 4-hop flow F2 entering at the junction. Under
// plain 802.11 the short flow's greedy source starves the long flow
// (Table 2: 7 vs 143 kb/s); EZ-Flow makes both sources self-throttle and
// restores the long flow. Each policy is swept over several seeds in
// parallel through analysis::SweepRunner.
//
//   ./parking_lot [--duration=400] [--seed=7] [--seeds=4] [--cap=1024]

#include <cstdio>

#include "analysis/experiment_factory.h"
#include "analysis/sweep.h"
#include "util/cli.h"

using namespace ezflow;

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double duration_s = cli.get_double("duration", 400.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    const int seeds = cli.get_int("seeds", 4);
    const int cap = cli.get_int("cap", 1 << 10);

    std::printf("Parking lot on the 9-router testbed (F1: 7 hops, F2: 4 hops, shared tail):\n\n");

    analysis::ExperimentOptions options;
    options.caa.max_cw = cap;  // the testbed's MadWifi driver capped at 2^10
    const analysis::ExperimentFactory baseline(
        analysis::ScenarioSpec::testbed(5, duration_s, 5, duration_s), options);

    analysis::SweepConfig config;
    config.windows.push_back(
        analysis::SweepWindow{"settled", 0.3 * duration_s, duration_s, {1, 2}});
    for (int i = 0; i < seeds; ++i) config.seeds.push_back(seed + static_cast<std::uint64_t>(i));
    config.keep_experiments = true;  // to read the EZ agents' final windows

    const auto results = analysis::SweepRunner(0).run_grid(
        {baseline, baseline.with_mode(analysis::Mode::kEzFlow)}, config);

    for (const analysis::SweepResult& result : results) {
        const analysis::WindowAggregate& window = result.windows.front();
        std::printf("%-18s  F1 %6.1f kb/s   F2 %6.1f kb/s   FI %.2f\n", result.label.c_str(),
                    window.flows[0].mean_kbps.mean(), window.flows[1].mean_kbps.mean(),
                    window.fairness.mean());
    }

    // The self-throttled source windows of the first EZ-Flow run.
    const analysis::Experiment& ez = *results[1].experiments.front();
    const net::Scenario& s = ez.scenario();
    std::printf("source windows (seed %llu): cw(N0)=%d, cw(N0')=%d\n",
                static_cast<unsigned long long>(seed),
                ez.agent(s.flows[0].path[0])->cw_toward(s.flows[0].path[1]),
                ez.agent(s.flows[1].path[0])->cw_toward(s.flows[1].path[1]));
    std::printf(
        "\nThe short flow's source throttles itself once its first relay's buffer\n"
        "builds up — an implicit congestion signal derived purely by sniffing.\n");
    return 0;
}

// Parking-lot scenario on the Fig. 3 testbed: a long 7-hop flow F1 shares
// its tail with a short 4-hop flow F2 entering at the junction. Under
// plain 802.11 the short flow's greedy source starves the long flow
// (Table 2: 7 vs 143 kb/s); EZ-Flow makes both sources self-throttle and
// restores the long flow.
//
//   ./example_parking_lot [--duration=400] [--seed=7] [--cap=1024]

#include <cstdio>

#include "analysis/experiment.h"
#include "net/topologies.h"
#include "util/cli.h"

using namespace ezflow;

namespace {

void run(analysis::Mode mode, double duration_s, std::uint64_t seed, int cw_cap)
{
    analysis::ExperimentOptions options;
    options.mode = mode;
    options.caa.max_cw = cw_cap;  // the testbed's MadWifi driver capped at 2^10
    analysis::Experiment experiment(net::make_testbed(5, duration_s, 5, duration_s, seed),
                                    options);
    experiment.run_until_s(duration_s);

    const double from = 0.3 * duration_s;
    const auto f1 = experiment.summarize(1, from, duration_s);
    const auto f2 = experiment.summarize(2, from, duration_s);
    std::printf("%-8s  F1 %6.1f kb/s   F2 %6.1f kb/s   FI %.2f\n",
                analysis::mode_name(mode).c_str(), f1.mean_kbps, f2.mean_kbps,
                experiment.fairness({1, 2}, from, duration_s));
    if (mode == analysis::Mode::kEzFlow) {
        const net::Scenario& s = experiment.scenario();
        const auto f1_src = s.flows[0].path[0];
        const auto f2_src = s.flows[1].path[0];
        std::printf("          source windows: cw(N0)=%d, cw(N0')=%d\n",
                    experiment.agent(f1_src)->cw_toward(s.flows[0].path[1]),
                    experiment.agent(f2_src)->cw_toward(s.flows[1].path[1]));
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double duration_s = cli.get_double("duration", 400.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    const int cap = cli.get_int("cap", 1 << 10);

    std::printf("Parking lot on the 9-router testbed (F1: 7 hops, F2: 4 hops, shared tail):\n\n");
    run(analysis::Mode::kBaseline80211, duration_s, seed, cap);
    run(analysis::Mode::kEzFlow, duration_s, seed, cap);
    std::printf(
        "\nThe short flow's source throttles itself once its first relay's buffer\n"
        "builds up — an implicit congestion signal derived purely by sniffing.\n");
    return 0;
}

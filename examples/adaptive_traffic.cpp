// Traffic-matrix adaptivity: the property Section 2.2 demands ("as the
// environment changes in real networks, we require EZ-flow to
// automatically adapt"). A bursty on-off flow joins a steady flow on the
// testbed; EZ-Flow's windows follow the load up and down without any
// signalling.
//
//   ./example_adaptive_traffic [--duration=600] [--seed=7]

#include <cstdio>

#include "core/agent.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"
#include "util/cli.h"

using namespace ezflow;

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double duration_s = cli.get_double("duration", 600.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

    net::Scenario scenario = net::make_testbed(5, duration_s, 5, duration_s, seed);
    net::Network& network = *scenario.network;

    auto agents = core::install_ezflow(network, core::CaaConfig{});
    traffic::Sink sink(network);
    sink.attach_flow(1);
    sink.attach_flow(2);

    // F1 carries steady CBR; F2 is bursty on-off traffic at the junction.
    traffic::CbrSource steady(network, 1, 1000, 2e6);
    steady.activate(util::from_seconds(5), util::from_seconds(duration_s));
    traffic::OnOffSource bursty(network, 2, 1000, 2e6, /*mean_on_s=*/30.0, /*mean_off_s=*/30.0);
    bursty.activate(util::from_seconds(5), util::from_seconds(duration_s));

    // Sample the two sources' windows once a minute of simulated time.
    const net::NodeId f1_src = scenario.flows[0].path[0];
    const net::NodeId f2_src = scenario.flows[1].path[0];
    std::printf("time[s]  cw(N0)  cw(N0')  delivered F1/F2 [pkts]\n");
    for (double t = 60.0; t <= duration_s; t += 60.0) {
        network.run_until(util::from_seconds(t));
        std::printf("%6.0f  %6d  %7d  %llu / %llu\n", t,
                    agents.at(f1_src)->cw_toward(scenario.flows[0].path[1]),
                    agents.at(f2_src)->cw_toward(scenario.flows[1].path[1]),
                    static_cast<unsigned long long>(sink.flow(1).packets),
                    static_cast<unsigned long long>(sink.flow(2).packets));
    }
    std::printf(
        "\nBoth windows breathe with the offered load: they climb while the burst\n"
        "is on (successor buffers fill) and decay during silences. No packet\n"
        "formats were changed and no control messages were sent.\n");
    return 0;
}

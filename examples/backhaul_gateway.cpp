// Backhaul-gateway scenario: the workload the paper's introduction
// motivates — several access points funnel user traffic over a multi-hop
// 802.11 backhaul toward the wired gateway (Fig. 2 / Fig. 5). Two 8-hop
// flows merge at a junction; EZ-Flow keeps the merge smooth while plain
// 802.11 congests.
//
//   ./example_backhaul_gateway [--scale=0.2] [--seed=7]

#include <cstdio>

#include "analysis/experiment.h"
#include "net/topologies.h"
#include "util/cli.h"

using namespace ezflow;

namespace {

void run(analysis::Mode mode, double scale, std::uint64_t seed)
{
    analysis::ExperimentOptions options;
    options.mode = mode;
    analysis::Experiment experiment(net::make_scenario1(scale, seed), options);
    experiment.run();

    const double both_begin = (605.0 + 360.0) * scale;
    const double both_end = 1804.0 * scale;
    const auto f1 = experiment.summarize(1, both_begin, both_end);
    const auto f2 = experiment.summarize(2, both_begin, both_end);
    std::printf("%-8s  F1 %6.1f kb/s (delay %5.2f s)   F2 %6.1f kb/s (delay %5.2f s)   FI %.2f\n",
                analysis::mode_name(mode).c_str(), f1.mean_kbps, f1.mean_delay_s, f2.mean_kbps,
                f2.mean_delay_s, experiment.fairness({1, 2}, both_begin, both_end));
}

}  // namespace

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double scale = cli.get_double("scale", 0.2);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

    std::printf("Two 8-hop access flows merging toward the gateway (scenario 1, x%.2f time):\n\n",
                scale);
    run(analysis::Mode::kBaseline80211, scale, seed);
    run(analysis::Mode::kEzFlow, scale, seed);
    std::printf(
        "\nEZ-flow needs no message passing: each node sniffs its successor's\n"
        "forwards, infers the queue, and steers only its own CWmin.\n");
    return 0;
}

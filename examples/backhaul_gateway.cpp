// Backhaul-gateway scenario: the workload the paper's introduction
// motivates — several access points funnel user traffic over a multi-hop
// 802.11 backhaul toward the wired gateway (Fig. 2 / Fig. 5). Two 8-hop
// flows merge at a junction; EZ-Flow keeps the merge smooth while plain
// 802.11 congests. Both policies are swept over several seeds in
// parallel through analysis::SweepRunner.
//
//   ./backhaul_gateway [--scale=0.2] [--seed=7] [--seeds=4] [--threads=0]

#include <cstdio>

#include "analysis/experiment_factory.h"
#include "analysis/sweep.h"
#include "util/cli.h"

using namespace ezflow;

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const double scale = cli.get_double("scale", 0.2);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    const int seeds = cli.get_int("seeds", 4);
    const int threads = cli.get_int("threads", 0);

    std::printf("Two 8-hop access flows merging toward the gateway (scenario 1, x%.2f time):\n\n",
                scale);

    // Measure the settled two-flow regime of the paper's timeline.
    const double both_begin = (605.0 + 360.0) * scale;
    const double both_end = 1804.0 * scale;
    analysis::SweepConfig config;
    config.windows.push_back(analysis::SweepWindow{"both flows", both_begin, both_end, {1, 2}});
    for (int i = 0; i < seeds; ++i) config.seeds.push_back(seed + static_cast<std::uint64_t>(i));

    const analysis::ExperimentFactory baseline(analysis::ScenarioSpec::scenario1(scale), {});
    const auto results = analysis::SweepRunner(threads).run_grid(
        {baseline, baseline.with_mode(analysis::Mode::kEzFlow)}, config);

    for (const analysis::SweepResult& result : results) {
        const analysis::WindowAggregate& window = result.windows.front();
        std::printf("%-22s  F1 %6.1f kb/s (delay %5.2f s)   F2 %6.1f kb/s (delay %5.2f s)   FI %.2f\n",
                    result.label.c_str(), window.flows[0].mean_kbps.mean(),
                    window.flows[0].mean_delay_s.mean(), window.flows[1].mean_kbps.mean(),
                    window.flows[1].mean_delay_s.mean(), window.fairness.mean());
    }
    std::printf("\n(%d seeds per policy, %.2f s wall)\n", seeds, results.front().wall_seconds);
    std::printf(
        "\nEZ-flow needs no message passing: each node sniffs its successor's\n"
        "forwards, infers the queue, and steers only its own CWmin.\n");
    return 0;
}

// Quickstart: build a 4-hop 802.11 mesh backhaul, saturate it, and watch
// EZ-Flow stabilize what plain 802.11 cannot.
//
//   ./example_quickstart [--hops=4] [--duration=300] [--seed=7] [--ezflow=true]
//
// This is the smallest end-to-end use of the library's public API:
// a canned topology, an Experiment (traffic + instrumentation), and the
// summary accessors.

#include <cstdio>

#include "analysis/experiment.h"
#include "net/topologies.h"
#include "util/cli.h"

using namespace ezflow;

int main(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    const int hops = cli.get_int("hops", 4);
    const double duration_s = cli.get_double("duration", 300.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    const bool ezflow = cli.get_bool("ezflow", true);

    analysis::ExperimentOptions options;
    options.mode = ezflow ? analysis::Mode::kEzFlow : analysis::Mode::kBaseline80211;

    analysis::Experiment experiment(net::make_line(hops, duration_s, seed), options);
    experiment.run();

    const double warmup_s = 0.3 * duration_s;
    const auto summary = experiment.summarize(0, warmup_s, duration_s);
    std::printf("%d-hop chain under %s for %.0f s:\n", hops,
                analysis::mode_name(options.mode).c_str(), duration_s);
    std::printf("  goodput        : %.1f kb/s\n", summary.mean_kbps);
    std::printf("  network delay  : %.3f s (max %.3f s)\n", summary.mean_delay_s,
                summary.max_delay_s);
    for (int n = 1; n < hops; ++n) {
        std::printf("  relay N%d queue : mean %.1f pkts, max %.0f pkts, drops %llu\n", n,
                    experiment.buffers().mean_occupancy(n, util::from_seconds(warmup_s),
                                                        util::from_seconds(duration_s)),
                    experiment.buffers().max_occupancy(n),
                    static_cast<unsigned long long>(
                        experiment.network().node(n).forward_queue_drops()));
    }
    if (ezflow) {
        std::printf("  contention windows discovered by EZ-flow:\n");
        for (int n = 0; n < hops; ++n) {
            if (const core::EzFlowAgent* agent = experiment.agent(n))
                std::printf("    cw%d -> %d\n", n, agent->cw_toward(n + 1));
        }
        std::printf("\nRe-run with --ezflow=false to see the relay buffers saturate.\n");
    }
    return 0;
}
